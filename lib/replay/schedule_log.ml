(* The schedule log: a recorded run's scheduling decisions plus enough
   metadata to re-execute it from the file alone.

   Serialized as JSONL so the existing line-oriented tooling (json_check,
   plain grep/jq) works on it unchanged:

     {"type":"sched_meta", ...}     identification, config, program text
     {"type":"sched_chunk","d":[...]}   decision stream, <= 4096 per line
     {"type":"sched_end", ...}      counts, preemption ordinals, outcome

   The meta line embeds the *executed* program (hardened text when the
   run was hardened) and its MD5, so a log replays without access to the
   original registry entry — and a replay against a supplied program can
   detect a mismatch before running a single step. The fail-block table
   (label name -> site id) reconstructs the [Machine.meta] recovery
   metadata for hardened programs. *)

open Conair_ir
open Conair_runtime
module Json = Conair_obs.Json
module Jsonl = Conair_obs.Jsonl
module Report = Conair_obs.Report

type ident = {
  id_app : string;
  id_variant : string;
  id_oracle : bool;
  id_mode : string;  (** "none" (unhardened), "survival" or "fix" *)
}

let ident ?(variant = "buggy") ?(oracle = false) ?(mode = "none") app =
  { id_app = app; id_variant = variant; id_oracle = oracle; id_mode = mode }

type t = {
  ident : ident;
  engine : string;  (** which engine recorded it ("fast" / "ref") *)
  config : Machine.config;
  program_md5 : string;
  program_text : string option;
  fail_blocks : (string * int) list;  (** fail-arm label name -> site id *)
  decisions : int array;
  preemptions : int array;  (** ordinals into [decisions], ascending *)
  steps : int;
  instrs : int;
  rollbacks : int;
  outcome : Outcome.t;
  outputs : string list;
}

let version = 1
let digest text = Digest.to_hex (Digest.string text)
let digest_program p = digest (Emit.program p)

let fail_blocks_of_meta : Machine.meta option -> (string * int) list = function
  | None -> []
  | Some mm ->
      List.map
        (fun (l, site) -> (Ident.Label.name l, site))
        mm.Machine.fail_blocks

let meta_of_fail_blocks : (string * int) list -> Machine.meta option = function
  | [] -> None
  | fbs ->
      let fail_index = Hashtbl.create (List.length fbs) in
      List.iter (fun (name, site) -> Hashtbl.replace fail_index name site) fbs;
      Some
        {
          Machine.fail_blocks =
            List.map (fun (name, site) -> (Ident.Label.v name, site)) fbs;
          fail_index;
        }

let machine_meta t : Machine.meta option = meta_of_fail_blocks t.fail_blocks

let program t =
  match t.program_text with
  | None -> Error "schedule log: no embedded program"
  | Some text -> (
      match Parse.program text with
      | Ok p -> Ok p
      | Error e ->
          Error
            (Format.asprintf "schedule log: embedded program: %a"
               Parse.pp_error e))

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let ints a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let meta_json t =
  Json.Obj
    ([
       ("type", Json.String "sched_meta");
       ("version", Json.Int version);
       ("app", Json.String t.ident.id_app);
       ("variant", Json.String t.ident.id_variant);
       ("oracle", Json.Bool t.ident.id_oracle);
       ("mode", Json.String t.ident.id_mode);
       ("engine", Json.String t.engine);
       ("config", Jsonl.config_json t.config);
       ("program_md5", Json.String t.program_md5);
     ]
    @ (match t.program_text with
      | None -> []
      | Some text -> [ ("program", Json.String text) ])
    @
    match t.fail_blocks with
    | [] -> []
    | fbs ->
        [
          ( "fail_blocks",
            Json.List
              (List.map
                 (fun (name, site) ->
                   Json.List [ Json.String name; Json.Int site ])
                 fbs) );
        ])

let end_json t =
  Json.Obj
    [
      ("type", Json.String "sched_end");
      ("decisions", Json.Int (Array.length t.decisions));
      ("preemptions", ints t.preemptions);
      ("steps", Json.Int t.steps);
      ("instrs", Json.Int t.instrs);
      ("rollbacks", Json.Int t.rollbacks);
      ("outcome", Report.outcome_json t.outcome);
      ("outputs", Json.List (List.map (fun s -> Json.String s) t.outputs));
    ]

let to_lines t =
  List.map Json.to_string
    ((meta_json t :: Jsonl.sched_chunks t.decisions) @ [ end_json t ])

let save t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines t))

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "schedule log: missing %S field" name)

let str name j =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "schedule log: malformed %S field" name)

let int name j =
  match Json.member name j with
  | Some (Json.Int n) -> Ok n
  | _ -> Error (Printf.sprintf "schedule log: malformed %S field" name)

let bool name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "schedule log: malformed %S field" name)

let int_list name j =
  match Json.member name j with
  | Some (Json.List l) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Int n :: rest -> go (n :: acc) rest
        | _ -> Error (Printf.sprintf "schedule log: malformed %S field" name)
      in
      go [] l
  | _ -> Error (Printf.sprintf "schedule log: malformed %S field" name)

let line_type j =
  match Json.member "type" j with Some (Json.String s) -> s | _ -> ""

let parse_meta j =
  let* v = int "version" j in
  if v > version then
    Error (Printf.sprintf "schedule log: unsupported version %d" v)
  else
    let* app = str "app" j in
    let* variant = str "variant" j in
    let* oracle = bool "oracle" j in
    let* mode = str "mode" j in
    let* engine = str "engine" j in
    let* config_j = field "config" j in
    let* config = Jsonl.config_of_json config_j in
    let* program_md5 = str "program_md5" j in
    let program_text =
      match Json.member "program" j with
      | Some (Json.String text) -> Some text
      | _ -> None
    in
    let* fail_blocks =
      match Json.member "fail_blocks" j with
      | None -> Ok []
      | Some (Json.List l) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | Json.List [ Json.String name; Json.Int site ] :: rest ->
                go ((name, site) :: acc) rest
            | _ -> Error "schedule log: malformed \"fail_blocks\" field"
          in
          go [] l
      | Some _ -> Error "schedule log: malformed \"fail_blocks\" field"
    in
    Ok
      ( { id_app = app; id_variant = variant; id_oracle = oracle; id_mode = mode },
        engine,
        config,
        program_md5,
        program_text,
        fail_blocks )

let of_lines lines =
  match lines with
  | [] -> Error "schedule log: empty"
  | meta_line :: rest ->
      let* meta_j = Json.of_string meta_line in
      if line_type meta_j <> "sched_meta" then
        Error "schedule log: first line is not a sched_meta record"
      else
        let* ident, engine, config, program_md5, program_text, fail_blocks =
          parse_meta meta_j
        in
        (* decision chunks, then exactly one trailing end record *)
        let buf = ref (Array.make 1024 0) in
        let n = ref 0 in
        let push tid =
          if !n = Array.length !buf then begin
            let bigger = Array.make (2 * !n) 0 in
            Array.blit !buf 0 bigger 0 !n;
            buf := bigger
          end;
          !buf.(!n) <- tid;
          incr n
        in
        let rec walk = function
          | [] -> Error "schedule log: missing sched_end record"
          | line :: rest -> (
              let* j = Json.of_string line in
              match line_type j with
              | "sched_chunk" ->
                  let* d = Jsonl.sched_chunk_decisions j in
                  List.iter push d;
                  walk rest
              | "sched_end" ->
                  if rest <> [] then
                    Error "schedule log: lines after the sched_end record"
                  else
                    let* count = int "decisions" j in
                    if count <> !n then
                      Error
                        (Printf.sprintf
                           "schedule log: sched_end declares %d decisions, \
                            chunks carry %d"
                           count !n)
                    else
                      let* preempts = int_list "preemptions" j in
                      let* steps = int "steps" j in
                      let* instrs = int "instrs" j in
                      let* rollbacks = int "rollbacks" j in
                      let* outcome_j = field "outcome" j in
                      let* outcome = Report.outcome_of_json outcome_j in
                      let* outputs =
                        match Json.member "outputs" j with
                        | Some (Json.List l) ->
                            let rec go acc = function
                              | [] -> Ok (List.rev acc)
                              | Json.String s :: rest -> go (s :: acc) rest
                              | _ ->
                                  Error
                                    "schedule log: malformed \"outputs\" field"
                            in
                            go [] l
                        | _ -> Error "schedule log: malformed \"outputs\" field"
                      in
                      Ok
                        {
                          ident;
                          engine;
                          config;
                          program_md5;
                          program_text;
                          fail_blocks;
                          decisions = Array.sub !buf 0 !n;
                          preemptions = Array.of_list preempts;
                          steps;
                          instrs;
                          rollbacks;
                          outcome;
                          outputs;
                        }
              | other ->
                  Error
                    (Printf.sprintf "schedule log: unexpected %S record" other))
        in
        walk rest

let load file =
  match
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then lines := line :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | lines -> of_lines lines
  | exception Sys_error e -> Error ("schedule log: " ^ e)
