(** The recorder: a scheduler tap ({!Conair_runtime.Sched.set_tap}) that
    captures every scheduling decision — the chosen-thread stream — and
    classifies each as preemptive (the previous thread was still eligible
    when another was chosen) or forced. *)

open Conair_runtime

type t

val create : unit -> t

val tap : t -> chosen:int -> eligible:int list -> unit
(** The tap itself — exposed so callers can compose it with their own
    observation in a single scheduler tap. *)

val attach : Sched.t -> t
(** [create] + [Sched.set_tap]. *)

val detach : Sched.t -> unit

val count : t -> int
(** Decisions recorded so far. *)

val decisions : t -> int array
val preemptions : t -> int array
(** Ordinals into {!decisions} of the preemptive switches, ascending. *)
