(* Flight-recorder bundles as replay artifacts.

   [capture] runs a program with the flight hook installed and packages
   the ring plus the machine's post-mortem state as an
   [Conair_obs.Flight.t] diagnostic bundle.

   [recover_log] is the regeneration recipe: because every run is
   deterministic from (program, seed, config, engine), re-running the
   bundle's embedded program under its embedded config with the full
   recorder attached reconstructs the complete decision stream. The
   recorded tail then acts as a tamper-evident check — the re-run's
   decision suffix, preemption ordinals and trailer must all match what
   the ring retained, or the bundle is rejected. On success the caller
   holds an ordinary schedule log, and strict replay, directed replay
   and minimization apply unchanged. *)

open Conair_ir
open Conair_runtime
module Log = Schedule_log
module Flight = Conair_obs.Flight

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

let bundle_of_machine ?(embed_program = true) ~engine ~reason ~config ~meta
    ~(ident : Log.ident) ~program m ring outcome =
  let stats = Engine.stats m in
  let text = Emit.program program in
  Flight.of_ring ~app:ident.Log.id_app ~variant:ident.Log.id_variant
    ~oracle:ident.Log.id_oracle ~mode:ident.Log.id_mode
    ~engine:(Engine.name engine) ~reason ~config
    ~program_md5:(Log.digest text)
    ~program_text:(if embed_program then Some text else None)
    ~fail_blocks:(Log.fail_blocks_of_meta meta)
    ~threads:(Engine.thread_summaries m)
    ~episodes:(Stats.episodes_chronological stats)
    ~steps:(Engine.steps m) ~instrs:stats.Stats.instrs
    ~rollbacks:stats.Stats.rollbacks ~outcome ~outputs:(Engine.outputs m) ring

let capture ?(engine = Engine.Fast) ?config ?meta ?cap ?embed_program
    ?(reason = "requested") ~ident program =
  let config = Option.value ~default:Machine.default_config config in
  let ring = Flight_ring.create ?cap () in
  let m =
    Engine.create ~config ?meta ~hooks:(Hooks.bundle ~flight:ring ()) engine
      program
  in
  let outcome = Engine.run m in
  let bundle =
    bundle_of_machine ?embed_program ~engine ~reason ~config ~meta ~ident
      ~program m ring outcome
  in
  (m, outcome, bundle)

(* ------------------------------------------------------------------ *)
(* Regeneration                                                        *)
(* ------------------------------------------------------------------ *)

let program_of (b : Flight.t) =
  match b.Flight.fb_program_text with
  | None -> Error "bundle: no embedded program"
  | Some text -> (
      let got = Log.digest text in
      if got <> b.Flight.fb_program_md5 then
        Error
          (Printf.sprintf
             "bundle: embedded program MD5 %s does not match recorded %s" got
             b.Flight.fb_program_md5)
      else
        match Parse.program text with
        | Ok p -> Ok p
        | Error e ->
            Error
              (Format.asprintf "bundle: embedded program: %a" Parse.pp_error e))

let ident_of (b : Flight.t) : Log.ident =
  {
    Log.id_app = b.Flight.fb_app;
    id_variant = b.Flight.fb_variant;
    id_oracle = b.Flight.fb_oracle;
    id_mode = b.Flight.fb_mode;
  }

(* Compare the re-run's suffix/preemptions/trailer against the tail the
   ring retained. Any disagreement means the bundle does not describe
   this program+config (or the engines drifted) — reject it. *)
let verify_against (b : Flight.t) recorder (m : Engine.machine) outcome =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n = Recorder.count recorder in
  if n <> b.Flight.fb_tail_total then
    err "bundle: re-run made %d decisions, bundle records %d" n
      b.Flight.fb_tail_total
  else
    let decisions = Recorder.decisions recorder in
    let first = b.Flight.fb_tail_first in
    let tail = b.Flight.fb_tail in
    let rec cmp i =
      if i >= Array.length tail then Ok ()
      else if decisions.(first + i) <> tail.(i) then
        err "bundle: decision %d diverges: re-run chose tid %d, tail has %d"
          (first + i)
          decisions.(first + i)
          tail.(i)
      else cmp (i + 1)
    in
    let* () = cmp 0 in
    let pre =
      Array.of_list
        (List.filter
           (fun ord -> ord >= first)
           (Array.to_list (Recorder.preemptions recorder)))
    in
    if pre <> b.Flight.fb_tail_preemptions then
      err "bundle: tail preemptions diverge (re-run %d, bundle %d)"
        (Array.length pre)
        (Array.length b.Flight.fb_tail_preemptions)
    else if Engine.steps m <> b.Flight.fb_steps then
      err "bundle: step count diverges: re-run %d, bundle %d" (Engine.steps m)
        b.Flight.fb_steps
    else
      let stats = Engine.stats m in
      if stats.Stats.instrs <> b.Flight.fb_instrs then
        err "bundle: instruction count diverges: re-run %d, bundle %d"
          stats.Stats.instrs b.Flight.fb_instrs
      else if stats.Stats.rollbacks <> b.Flight.fb_rollbacks then
        err "bundle: rollback count diverges: re-run %d, bundle %d"
          stats.Stats.rollbacks b.Flight.fb_rollbacks
      else if outcome <> b.Flight.fb_outcome then
        err "bundle: outcome diverges: re-run %s, bundle %s"
          (Outcome.to_string outcome)
          (Outcome.to_string b.Flight.fb_outcome)
      else if Engine.outputs m <> b.Flight.fb_outputs then
        err "bundle: outputs diverge"
      else Ok ()

let recover_log ?engine (b : Flight.t) : (Log.t, string) result =
  let* engine =
    match engine with
    | Some e -> Ok e
    | None -> Engine.of_string b.Flight.fb_engine
  in
  let* program = program_of b in
  let meta = Log.meta_of_fail_blocks b.Flight.fb_fail_blocks in
  let config = b.Flight.fb_config in
  let recorder = Recorder.create () in
  let m =
    Engine.create ~config ?meta
      ~hooks:(Hooks.bundle ~tap:(Recorder.tap recorder) ())
      engine program
  in
  let outcome = Engine.run m in
  let* () = verify_against b recorder m outcome in
  let rb =
    {
      Driver.rb_outcome = outcome;
      rb_outputs = Engine.outputs m;
      rb_stats = Engine.stats m;
      rb_steps = Engine.steps m;
    }
  in
  Ok
    (Driver.log_of_run ~engine ~config ?meta ~ident:(ident_of b) ~program
       recorder rb)
