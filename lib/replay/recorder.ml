(* The recorder: a scheduler tap that captures the chosen-thread stream
   and classifies context switches as it goes.

   A decision is a *preemptive* switch when the chosen thread differs
   from the previously scheduled one while the previous one was still
   eligible — the scheduler took the CPU away. Switches forced by the
   previous thread blocking, sleeping or finishing are reproduced for
   free by any schedule-respecting executor, so only preemptive switches
   are interesting to the minimizer. *)

open Conair_runtime

type t = {
  mutable d : int array;
  mutable n : int;
  mutable prev : int;  (** previously chosen tid, [-1] before the first *)
  mutable preempts_rev : int list;  (** preemptive ordinals, newest first *)
}

let create () = { d = Array.make 1024 0; n = 0; prev = -1; preempts_rev = [] }

let push r tid =
  if r.n = Array.length r.d then begin
    let bigger = Array.make (2 * r.n) 0 in
    Array.blit r.d 0 bigger 0 r.n;
    r.d <- bigger
  end;
  r.d.(r.n) <- tid;
  r.n <- r.n + 1

let tap r ~chosen ~eligible =
  let k = r.n in
  push r chosen;
  if chosen <> r.prev && r.prev >= 0 && List.mem r.prev eligible then
    r.preempts_rev <- k :: r.preempts_rev;
  r.prev <- chosen

let attach sched =
  let r = create () in
  Sched.set_tap sched (Some (tap r));
  r

let detach sched = Sched.set_tap sched None
let count r = r.n
let decisions r = Array.sub r.d 0 r.n
let preemptions r = Array.of_list (List.rev r.preempts_rev)
