(* Record a run into a schedule log; replay a log on any engine with
   divergence detection; verify a replay against the recorded trailer. *)

open Conair_ir
open Conair_runtime
module Log = Schedule_log

type engine = Engine.t = Ref | Fast | Block

let engine_name = Engine.name
let engine_of_name = Engine.of_string

(** What both engines report about a finished execution. *)
type result_bundle = {
  rb_outcome : Outcome.t;
  rb_outputs : string list;
  rb_stats : Stats.t;
  rb_steps : int;
}

type divergence = {
  dv_decision : int;  (** ordinal of the disagreeing decision *)
  dv_step : int;  (** machine virtual time when it was detected *)
  dv_expected : int option;  (** recorded tid; [None] = log exhausted *)
  dv_actual : int list;  (** the eligible set the replay offered *)
  dv_reason : string;
}

type error =
  | Program_mismatch of { expected_md5 : string; got_md5 : string }
  | No_program of string
  | Diverged of divergence

let error_to_string = function
  | Program_mismatch { expected_md5; got_md5 } ->
      Printf.sprintf
        "program mismatch: log records MD5 %s, supplied program has %s"
        expected_md5 got_md5
  | No_program e -> e
  | Diverged d ->
      Printf.sprintf
        "diverged at decision %d (step %d): %s — recorded %s, eligible [%s]"
        d.dv_decision d.dv_step d.dv_reason
        (match d.dv_expected with
        | Some tid -> "tid " ^ string_of_int tid
        | None -> "end of log")
        (String.concat "; " (List.map string_of_int d.dv_actual))

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(* Package a finished recorded run as a schedule log. Exposed so callers
   that need to keep the machine itself (the facade's [run] type) can
   drive the recording and still get an identical log. *)
let log_of_run ?(engine = Fast) ~config ?meta ?(embed_program = true) ~ident
    ~program recorder (bundle : result_bundle) =
  let text = Emit.program program in
  {
    Log.ident;
    engine = engine_name engine;
    config;
    program_md5 = Log.digest text;
    program_text = (if embed_program then Some text else None);
    fail_blocks = Log.fail_blocks_of_meta meta;
    decisions = Recorder.decisions recorder;
    preemptions = Recorder.preemptions recorder;
    steps = bundle.rb_steps;
    instrs = bundle.rb_stats.Stats.instrs;
    rollbacks = bundle.rb_stats.Stats.rollbacks;
    outcome = bundle.rb_outcome;
    outputs = bundle.rb_outputs;
  }

let record ?(engine = Fast) ?config ?meta ?embed_program ~ident program =
  let config = Option.value ~default:Machine.default_config config in
  let recorder = Recorder.create () in
  let m =
    Engine.create ~config ?meta
      ~hooks:(Hooks.bundle ~tap:(Recorder.tap recorder) ())
      engine program
  in
  let outcome = Engine.run m in
  let bundle =
    {
      rb_outcome = outcome;
      rb_outputs = Engine.outputs m;
      rb_stats = Engine.stats m;
      rb_steps = Engine.steps m;
    }
  in
  ( bundle,
    log_of_run ~engine ~config ?meta ?embed_program ~ident ~program recorder
      bundle )

(* ------------------------------------------------------------------ *)
(* Replaying                                                           *)
(* ------------------------------------------------------------------ *)

(* Resolve the program to execute: the supplied one (verified against the
   recorded MD5) or the log's embedded text. *)
let resolve_program ?program (log : Log.t) =
  match program with
  | Some p ->
      let got = Log.digest_program p in
      if got <> log.Log.program_md5 then
        Error (Program_mismatch { expected_md5 = log.Log.program_md5; got_md5 = got })
      else Ok p
  | None -> (
      match Log.program log with
      | Ok p -> Ok p
      | Error e -> Error (No_program e))

let resolve_meta ?meta (log : Log.t) =
  match meta with Some _ -> meta | None -> Log.machine_meta log

let exhausted_reason = function
  | None -> "the execution needs more decisions than were recorded"
  | Some _ -> "the recorded thread is not eligible"

let replay ?(engine = Fast) ?program ?meta (log : Log.t) =
  match resolve_program ?program log with
  | Error e -> Error e
  | Ok program -> (
      let meta = resolve_meta ?meta log in
      let config = log.Log.config in
      let h = Feed.strict log.Log.decisions in
      let m =
        Engine.create ~config ?meta
          ~hooks:(Hooks.bundle ~feed:(Feed.strict_decide h) ())
          engine program
      in
      match Engine.run m with
      | outcome ->
          if h.Feed.pos < Array.length log.Log.decisions then
            Error
              (Diverged
                 {
                   dv_decision = h.Feed.pos;
                   dv_step = Engine.steps m;
                   dv_expected = Some log.Log.decisions.(h.Feed.pos);
                   dv_actual = [];
                   dv_reason =
                     "the execution finished before consuming the recorded \
                      schedule";
                 })
          else
            Ok
              {
                rb_outcome = outcome;
                rb_outputs = Engine.outputs m;
                rb_stats = Engine.stats m;
                rb_steps = Engine.steps m;
              }
      | exception Feed.Diverged d ->
          Error
            (Diverged
               {
                 dv_decision = d.Feed.at;
                 dv_step = Engine.steps m;
                 dv_expected = d.Feed.expected;
                 dv_actual = d.Feed.eligible;
                 dv_reason = exhausted_reason d.Feed.expected;
               }))

(* Directed replay of a log's schedule against a *different* program —
   the fix synthesizer's validation gate: the candidate patch changes
   the program text (so strict replay's MD5 check and decision stream
   are both off the table), but the recorded failure's context switches
   can still be forced at the same per-thread decision counts. The
   directed feed is divergence-safe by construction: between directives
   the current thread keeps running, and when it cannot (say the patch
   made it block on a new lock) control falls to the next eligible
   thread in round-robin order — exactly what "the recorded failing
   schedule now passes or diverges safely" means. *)
let replay_directed ?(engine = Fast) ?meta ~program (log : Log.t) =
  let config = log.Log.config in
  let fixed, cand =
    Feed.directives_of ~decisions:log.Log.decisions
      ~preemptions:log.Log.preemptions
  in
  let d = Feed.directed (Feed.merge_directives fixed cand) in
  let m =
    Engine.create ~config ?meta
      ~hooks:
        (Hooks.bundle ~feed:(fun ~eligible -> Feed.directed_decide d ~eligible) ())
      engine program
  in
  let outcome = Engine.run m in
  {
    rb_outcome = outcome;
    rb_outputs = Engine.outputs m;
    rb_stats = Engine.stats m;
    rb_steps = Engine.steps m;
  }

let check (log : Log.t) (b : result_bundle) =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if b.rb_outcome <> log.Log.outcome then
    err "outcome mismatch: recorded %s, replayed %s"
      (Outcome.to_string log.Log.outcome)
      (Outcome.to_string b.rb_outcome)
  else if b.rb_outputs <> log.Log.outputs then err "output mismatch"
  else if b.rb_steps <> log.Log.steps then
    err "step-count mismatch: recorded %d, replayed %d" log.Log.steps
      b.rb_steps
  else if b.rb_stats.Stats.instrs <> log.Log.instrs then
    err "instruction-count mismatch: recorded %d, replayed %d" log.Log.instrs
      b.rb_stats.Stats.instrs
  else if b.rb_stats.Stats.rollbacks <> log.Log.rollbacks then
    err "rollback-count mismatch: recorded %d, replayed %d" log.Log.rollbacks
      b.rb_stats.Stats.rollbacks
  else Ok ()
