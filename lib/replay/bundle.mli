(** Flight-recorder bundles as replay artifacts.

    {!capture} runs a program with the flight hook installed and packages
    the ring plus the machine's post-mortem state as a
    {!Conair_obs.Flight.t} diagnostic bundle. {!recover_log} re-runs a
    bundle's embedded program under its embedded config with the full
    recorder attached, verifies the re-run against the recorded tail
    (decision suffix, preemption ordinals, trailer — any disagreement
    rejects the bundle) and returns an ordinary schedule log, after which
    strict replay, directed replay and minimization apply unchanged. *)

open Conair_ir
open Conair_runtime

val capture :
  ?engine:Engine.t ->
  ?config:Machine.config ->
  ?meta:Machine.meta ->
  ?cap:int ->
  ?embed_program:bool ->
  ?reason:string ->
  ident:Schedule_log.ident ->
  Program.t ->
  Engine.machine * Outcome.t * Conair_obs.Flight.t
(** Run [program] to completion with a flight ring of [cap] decisions
    (default {!Flight_ring.default_capacity}) attached via the flight
    hook, and build the diagnostic bundle. [engine] defaults to [Fast],
    [config] to {!Machine.default_config}, [embed_program] to [true],
    [reason] to ["requested"]. The finished machine is returned so the
    caller can inspect further state. *)

val recover_log :
  ?engine:Engine.t -> Conair_obs.Flight.t -> (Schedule_log.t, string) result
(** Regenerate a full schedule log from a bundle by deterministic re-run.
    [engine] defaults to the bundle's recorded engine. Fails when the
    bundle carries no program, the embedded text's MD5 mismatches, or
    the re-run's decision suffix / tail preemptions / trailer disagree
    with what the ring retained. *)
