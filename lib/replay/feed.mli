(** Scheduler feeds ({!Conair_runtime.Sched.set_feed}): force a machine
    through a recorded or synthesized schedule. *)

open Conair_runtime

type divergence_info = {
  at : int;  (** decision ordinal where replay and recording disagree *)
  expected : int option;
      (** the recorded tid, or [None] when the log is exhausted *)
  eligible : int list;  (** what the replayed execution offered instead *)
}

exception Diverged of divergence_info

(** {1 Strict replay} *)

type strict = { decisions : int array; mutable pos : int }

val strict : ?start:int -> int array -> strict

val strict_decide : strict -> eligible:int list -> int
(** The feed function: returns the next recorded decision.
    @raise Diverged when it is not eligible or the log is exhausted. *)

val attach_strict : ?start:int -> Sched.t -> int array -> strict

(** {1 Directed execution}

    A sparse schedule: ordered context-switch directives over an
    otherwise serial execution. Between directives the current thread
    keeps running; when it cannot, control falls to the next eligible
    tid in round-robin order. Feeding every switch of a recorded
    round-robin run reproduces it exactly; subsets are the minimizer's
    search space. *)

type directive = {
  dr_from : int;  (** the thread being preempted *)
  dr_count : int;  (** fire once [dr_from] has run this many decisions *)
  dr_to : int;  (** the thread taking over *)
}

type directed = {
  mutable queue : directive list;
  mutable cur : int;
  counts : (int, int) Hashtbl.t;
  mutable fired : int;  (** directives consumed so far *)
}

val directed : directive list -> directed
(** Fresh feed state without touching any scheduler — pair
    [directed_decide] with [Hooks.with_installed ~feed] for scoped
    installation. *)

val directed_decide : directed -> eligible:int list -> int
val attach_directed : Sched.t -> directive list -> directed

val directives_of :
  decisions:int array ->
  preemptions:int array ->
  (int * directive) list * (int * directive) list
(** Recast a recorded decision stream as context-switch directives,
    keyed by the decision ordinal where each switch fired: [(forced,
    preemptive)]. Forced switches (the outgoing thread blocked or
    finished) must be kept by any executor; the preemptive ones are the
    minimizer's search space. Feeding
    [merge_directives forced preemptive] back through {!directed}
    reproduces the recording exactly. *)

val merge_directives :
  (int * directive) list -> (int * directive) list -> directive list
(** Merge forced directives with a preemptive subset by original
    ordinal, dropping the keys. *)

val detach : Sched.t -> unit
