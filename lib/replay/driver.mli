(** Record a run into a {!Schedule_log}, replay a log on any engine with
    divergence detection, and verify a replay against the recorded
    trailer. *)

open Conair_ir
open Conair_runtime

(** = {!Conair_runtime.Engine.t}: any engine records, any engine replays,
    in any combination — schedule logs are engine-interchangeable. *)
type engine = Engine.t = Ref  (** [Ref_machine] *)
  | Fast  (** [Machine] *)
  | Block  (** [Block_machine] *)

val engine_name : engine -> string
val engine_of_name : string -> (engine, string) result

(** What both engines report about a finished execution. *)
type result_bundle = {
  rb_outcome : Outcome.t;
  rb_outputs : string list;
  rb_stats : Stats.t;
  rb_steps : int;
}

(** A structured divergence: exactly where the replayed execution
    disagreed with the recording. *)
type divergence = {
  dv_decision : int;  (** ordinal of the disagreeing decision *)
  dv_step : int;  (** machine virtual time when it was detected *)
  dv_expected : int option;  (** recorded tid; [None] = log exhausted *)
  dv_actual : int list;  (** the eligible set the replay offered *)
  dv_reason : string;
}

type error =
  | Program_mismatch of { expected_md5 : string; got_md5 : string }
      (** the supplied program is not the recorded one *)
  | No_program of string  (** no embedded program, or it fails to parse *)
  | Diverged of divergence

val error_to_string : error -> string

val log_of_run :
  ?engine:engine ->
  config:Machine.config ->
  ?meta:Machine.meta ->
  ?embed_program:bool ->
  ident:Schedule_log.ident ->
  program:Program.t ->
  Recorder.t ->
  result_bundle ->
  Schedule_log.t
(** Package a finished recorded run as a schedule log — for callers that
    drove the recording themselves (and e.g. kept the machine). *)

val record :
  ?engine:engine ->
  ?config:Machine.config ->
  ?meta:Machine.meta ->
  ?embed_program:bool ->
  ident:Schedule_log.ident ->
  Program.t ->
  result_bundle * Schedule_log.t
(** Run [program] with the recorder tap installed and package the
    decision stream as a self-contained schedule log. [embed_program]
    (default [true]) controls whether the program text rides in the log;
    [meta] is the recovery metadata for hardened programs and is
    serialized into the log's fail-block table. *)

val replay :
  ?engine:engine ->
  ?program:Program.t ->
  ?meta:Machine.meta ->
  Schedule_log.t ->
  (result_bundle, error) result
(** Re-execute a recorded schedule. The program defaults to the log's
    embedded text; a supplied program is verified against the recorded
    MD5 first. The replaying engine is independent of the recording one —
    cross-engine replay is part of the differential guarantee. *)

val replay_directed :
  ?engine:engine ->
  ?meta:Machine.meta ->
  program:Program.t ->
  Schedule_log.t ->
  result_bundle
(** Re-execute a log's schedule against a *different* program — the fix
    synthesizer's replay gate. The recording is recast as context-switch
    directives ({!Feed.directives_of}) and driven through the
    divergence-safe directed feed: the recorded failure's preemptions are
    forced at the same per-thread decision counts, and wherever the
    patched program can no longer follow (a thread now blocks on an
    inserted lock or wait), control falls to the next eligible thread in
    round-robin order. No MD5 check, never raises [Feed.Diverged]. *)

val check : Schedule_log.t -> result_bundle -> (unit, string) result
(** Compare a replay's results against the log's recorded trailer
    (outcome, outputs, steps, instruction and rollback counts). *)

(** {1 Shared resolution helpers} (used by the inspector and minimizer) *)

val resolve_program :
  ?program:Program.t -> Schedule_log.t -> (Program.t, error) result
(** The supplied program verified against the recorded MD5, or the log's
    embedded text parsed. *)

val resolve_meta : ?meta:Machine.meta -> Schedule_log.t -> Machine.meta option
