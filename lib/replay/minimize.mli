(** Failing-interleaving minimization: Zeller-style delta debugging
    (ddmin) over a recorded schedule's preemption points.

    The recorded schedule is recast as context-switch directives;
    switches forced by blocking are kept, the preemptive ones are
    searched. The result is a locally minimal set of preemptions that
    still reproduces the recorded failure, re-recorded into a
    strict-replayable log, with a switch-by-switch explanation and — when
    the detector fires on the minimized schedule — the race/deadlock
    report naming the root cause. See [docs/REPLAY.md]. *)

open Conair_runtime

(** One context switch of the minimized run, with the program points it
    connects. *)
type switch = {
  sw_index : int;  (** ordinal in the minimized decision stream *)
  sw_step : int;
  sw_from : int;
  sw_to : int;
  sw_from_at : string;  (** where the preempted thread stood *)
  sw_to_at : string;  (** where the incoming thread resumes *)
  sw_preemptive : bool;
}

type t = {
  mn_log : Schedule_log.t;  (** minimized, strict-replayable *)
  mn_original : int;  (** preemptive switches in the input log *)
  mn_minimized : int;  (** preemptive directives the failure needs *)
  mn_tests : int;  (** candidate executions run by ddmin *)
  mn_switches : switch list;  (** every switch of the minimized run *)
  mn_races : Conair_race.Report.t option;
}

val same_failure : Outcome.t -> Outcome.t -> bool
(** Same bug, not same run: failure kind/site/message must match; hang
    participants and step counts may shift. *)

val minimize :
  ?max_tests:int ->
  ?detect:bool ->
  ?program:Conair_ir.Program.t ->
  ?meta:Machine.meta ->
  Schedule_log.t ->
  (t, string) result
(** [max_tests] (default 2000) bounds candidate executions; [detect]
    (default true) runs the race detector on the minimized schedule.
    Fails when the recorded run succeeded, when the failure does not
    reproduce from the recorded switch points, or on a program
    mismatch. *)

val to_json : t -> Conair_obs.Json.t
val render : t -> string
