(* The time-travel inspector: reconstruct the machine state at any step
   of a recorded run.

   One forward pass replays the log under a strict feed and drops a
   waypoint — a whole-machine snapshot plus the scheduler's rng/cursor
   state — every [stride] decisions. Seeking to step N then restores the
   nearest waypoint at or before N into a *fresh* machine (fresh because
   [Machine.restore] never moves virtual time backward on a live one)
   and strict-replays forward until the machine's clock reaches N. The
   state shown for step N is the state *before* the instruction at
   virtual time N executes.

   Waypoints must capture the scheduler state *before* the decision they
   are keyed to: the feed consumes the policy's rng draw for every
   decision, so snapshotting after it would double-consume the draw on
   resume and silently skew deadlock backoff and perturbed timing. The
   capture therefore lives in the feed wrapper, ahead of
   [Feed.strict_decide]. *)

open Conair_ir
open Conair_runtime
module Json = Conair_obs.Json
module Log = Schedule_log

type waypoint = {
  wp_decision : int;
  wp_step : int;
  wp_snap : Machine.snapshot;
  wp_sched : Sched.saved;
}

type t = {
  program : Program.t;
  meta : Machine.meta option;
  log : Log.t;
  waypoints : waypoint array;  (** ascending by decision (and step) *)
  final : Driver.result_bundle;
  instr_texts : (int, string) Hashtbl.t;  (** iid -> source instruction *)
}

let instr_texts p =
  let tbl = Hashtbl.create 256 in
  Program.iter_funcs p (fun f ->
      Func.iter_instrs f (fun _blk i ->
          Hashtbl.replace tbl i.Instr.iid (Format.asprintf "%a" Instr.pp i)));
  tbl

let default_stride = 512

let create ?(stride = default_stride) ?program ?meta (log : Log.t) =
  if stride <= 0 then invalid_arg "Inspect.create: stride must be positive";
  match Driver.resolve_program ?program log with
  | Error e -> Error (Driver.error_to_string e)
  | Ok program -> (
      let meta = Driver.resolve_meta ?meta log in
      let config = log.Log.config in
      let m = Machine.create ~config ?meta program in
      let sched = m.Machine.sched in
      let h = Feed.strict log.Log.decisions in
      let ways = ref [] in
      (* the feed snapshots the machine it steers, so it can only be
         built after [create]: install post-create via the machine's own
         hook target *)
      Hooks.install (Machine.hooks m)
        (Hooks.bundle
           ~feed:(fun ~eligible ->
             if h.Feed.pos mod stride = 0 then
               ways :=
                 {
                   wp_decision = h.Feed.pos;
                   wp_step = m.Machine.step;
                   wp_snap = Machine.snapshot m;
                   wp_sched = Sched.save sched;
                 }
                 :: !ways;
             Feed.strict_decide h ~eligible)
           ());
      match Machine.run m with
      | outcome ->
          Feed.detach sched;
          Ok
            {
              program;
              meta;
              log;
              waypoints = Array.of_list (List.rev !ways);
              final =
                {
                  Driver.rb_outcome = outcome;
                  rb_outputs = Machine.outputs m;
                  rb_stats = Machine.stats m;
                  rb_steps = m.Machine.step;
                };
              instr_texts = instr_texts program;
            }
      | exception Feed.Diverged d ->
          Feed.detach sched;
          Error
            (Printf.sprintf
               "inspect: the log does not replay against this program \
                (diverged at decision %d)"
               d.Feed.at))

let final_step t = t.final.Driver.rb_steps
let outcome t = t.final.Driver.rb_outcome

(* ------------------------------------------------------------------ *)
(* State rendering                                                     *)
(* ------------------------------------------------------------------ *)

let value_json v = Json.String (Value.to_string v)

let frame_json texts (fr : Thread.frame) =
  let blk = fr.Thread.block in
  let at, iid =
    if fr.Thread.idx < Array.length blk.Link.lb_instrs then
      let li = blk.Link.lb_instrs.(fr.Thread.idx) in
      ( Option.value ~default:"?"
          (Hashtbl.find_opt texts li.Link.li_iid),
        li.Link.li_iid )
    else ("<terminator>", -1)
  in
  let names = fr.Thread.func.Link.lf_reg_names in
  let regs = ref [] in
  for i = Array.length fr.Thread.regs - 1 downto 0 do
    let v = fr.Thread.regs.(i) in
    if v != Thread.undef && i < Array.length names then
      regs := (Ident.Reg.name names.(i), value_json v) :: !regs
  done;
  let stack_vars =
    (match fr.Thread.stack_vars with
    | None -> []
    | Some h -> Hashtbl.fold (fun k v acc -> (k, value_json v) :: acc) h [])
    |> List.sort compare
  in
  Json.Obj
    ([
       ("func", Json.String fr.Thread.func.Link.lf_qname);
       ("block", Json.String blk.Link.lb_label_name);
       ("idx", Json.Int fr.Thread.idx);
     ]
    @ (if iid >= 0 then [ ("iid", Json.Int iid) ] else [])
    @ [ ("next", Json.String at); ("regs", Json.Obj !regs) ]
    @ if stack_vars = [] then [] else [ ("stack_vars", Json.Obj stack_vars) ])

let status_json (s : Thread.status) =
  match s with
  | Thread.Runnable -> Json.String "runnable"
  | Thread.Sleeping until ->
      Json.Obj [ ("sleeping_until", Json.Int until) ]
  | Thread.Blocked_lock { name; since; timeout } ->
      Json.Obj
        ([ ("blocked_lock", Json.String name); ("since", Json.Int since) ]
        @
        match timeout with
        | None -> []
        | Some d -> [ ("timeout", Json.Int d) ])
  | Thread.Blocked_event { name; since; timeout } ->
      Json.Obj
        ([ ("blocked_event", Json.String name); ("since", Json.Int since) ]
        @
        match timeout with
        | None -> []
        | Some d -> [ ("timeout", Json.Int d) ])
  | Thread.Blocked_join tid -> Json.Obj [ ("blocked_join", Json.Int tid) ]
  | Thread.Done -> Json.String "done"
  | Thread.Failed -> Json.String "failed"

let thread_json texts (m : Machine.t) (th : Thread.t) =
  let retries =
    Hashtbl.fold (fun site n acc -> (site, n) :: acc) th.Thread.retries []
    |> List.sort compare
  in
  Json.Obj
    ([
       ("tid", Json.Int th.Thread.tid);
       ("status", status_json th.Thread.status);
       ("stack_depth", Json.Int th.Thread.stack_depth);
       ("stack", Json.List (List.map (frame_json texts) th.Thread.stack));
       ( "locks_held",
         Json.List
           (List.map
              (fun l -> Json.String l)
              (Locks.held_by m.Machine.locks ~tid:th.Thread.tid)) );
     ]
    @ (match th.Thread.checkpoint with
      | None -> []
      | Some ck ->
          [
            ( "checkpoint",
              Json.Obj
                [
                  ("block", Json.String (Ident.Label.name ck.Thread.ck_block));
                  ("idx", Json.Int ck.Thread.ck_idx);
                  ("depth", Json.Int ck.Thread.ck_depth);
                  ("taken_at_step", Json.Int ck.Thread.ck_step);
                ] );
          ])
    @ (match th.Thread.recovering with
      | None -> []
      | Some r ->
          [
            ( "recovering",
              Json.Obj
                [
                  ("site", Json.Int r.Thread.rec_site);
                  ("since_step", Json.Int r.Thread.rec_start);
                  ("retries_before", Json.Int r.Thread.rec_retries_before);
                ] );
          ])
    @
    if retries = [] then []
    else
      [
        ( "retries",
          Json.Obj
            (List.map (fun (site, n) -> (string_of_int site, Json.Int n)) retries)
        );
      ])

let state_json t (m : Machine.t) =
  let threads =
    Hashtbl.fold (fun _ th acc -> th :: acc) m.Machine.threads []
    |> List.sort (fun a b -> compare a.Thread.tid b.Thread.tid)
  in
  let globals =
    Hashtbl.fold (fun k v acc -> (k, value_json v) :: acc) m.Machine.globals []
    |> List.sort compare
  in
  let locks =
    Hashtbl.fold
      (fun name (st : Locks.state) acc ->
        ( name,
          match st.Locks.owner with
          | None -> Json.String "free"
          | Some tid -> Json.Obj [ ("owner", Json.Int tid) ] )
        :: acc)
      m.Machine.locks []
    |> List.sort compare
  in
  Json.Obj
    [
      ("type", Json.String "machine_state");
      ("app", Json.String t.log.Log.ident.Log.id_app);
      ("step", Json.Int m.Machine.step);
      ("threads", Json.List (List.map (thread_json t.instr_texts m) threads));
      ("globals", Json.Obj globals);
      ("locks", Json.Obj locks);
      ("outputs", Json.List (List.map (fun s -> Json.String s) (Machine.outputs m)));
    ]

(* ------------------------------------------------------------------ *)
(* Seeking                                                             *)
(* ------------------------------------------------------------------ *)

let waypoint_for t target =
  let best = ref None in
  Array.iter
    (fun wp -> if wp.wp_step <= target then best := Some wp)
    t.waypoints;
  !best

let state_at t target =
  if target < 0 then Error "step must be >= 0"
  else if target > final_step t then
    Error
      (Printf.sprintf "step %d is beyond the end of the recorded run (%d)"
         target (final_step t))
  else begin
    let config = t.log.Log.config in
    let m = Machine.create ~config ?meta:t.meta t.program in
    let sched = m.Machine.sched in
    let start =
      match waypoint_for t target with
      | Some wp ->
          Machine.restore m wp.wp_snap;
          Sched.restore sched wp.wp_sched;
          wp.wp_decision
      | None -> 0
    in
    let _h = Feed.attach_strict ~start sched t.log.Log.decisions in
    match
      while m.Machine.step < target && Machine.step m do
        ()
      done
    with
    | () ->
        Feed.detach sched;
        Ok (state_json t m)
    | exception Feed.Diverged d ->
        Feed.detach sched;
        Error
          (Printf.sprintf "inspect: schedule diverged while seeking (decision %d)"
             d.Feed.at)
  end

(* ------------------------------------------------------------------ *)
(* Pretty rendering                                                    *)
(* ------------------------------------------------------------------ *)

let jstr = function Json.String s -> s | j -> Json.to_string j
let jint = function Json.Int n -> n | _ -> 0
let mem name j = Option.value ~default:Json.Null (Json.member name j)

let render_frame buf fr =
  Buffer.add_string buf
    (Printf.sprintf "      %s:%s[%d]  %s\n"
       (jstr (mem "func" fr))
       (jstr (mem "block" fr))
       (jint (mem "idx" fr))
       (jstr (mem "next" fr)));
  match mem "regs" fr with
  | Json.Obj [] | Json.Null -> ()
  | Json.Obj regs ->
      Buffer.add_string buf "        ";
      Buffer.add_string buf
        (String.concat ", "
           (List.map (fun (name, v) -> name ^ "=" ^ jstr v) regs));
      Buffer.add_char buf '\n'
  | _ -> ()

let render_thread buf th =
  let status =
    match mem "status" th with
    | Json.String s -> s
    | j -> Json.to_string j
  in
  let locks =
    match mem "locks_held" th with
    | Json.List (_ :: _ as l) ->
        "  holds " ^ String.concat ", " (List.map jstr l)
    | _ -> ""
  in
  let recovering =
    match mem "recovering" th with
    | Json.Null -> ""
    | r ->
        Printf.sprintf "  RECOVERING site %d (since step %d)"
          (jint (mem "site" r))
          (jint (mem "since_step" r))
  in
  Buffer.add_string buf
    (Printf.sprintf "  thread %d: %s%s%s\n" (jint (mem "tid" th)) status locks
       recovering);
  match mem "stack" th with
  | Json.List frames -> List.iter (render_frame buf) frames
  | _ -> ()

let render state =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "state of %s at step %d\n"
       (jstr (mem "app" state))
       (jint (mem "step" state)));
  (match mem "threads" state with
  | Json.List threads -> List.iter (render_thread buf) threads
  | _ -> ());
  (match mem "globals" state with
  | Json.Obj (_ :: _ as globals) ->
      Buffer.add_string buf "  globals: ";
      Buffer.add_string buf
        (String.concat ", "
           (List.map (fun (name, v) -> name ^ "=" ^ jstr v) globals));
      Buffer.add_char buf '\n'
  | _ -> ());
  (match mem "locks" state with
  | Json.Obj (_ :: _ as locks) ->
      Buffer.add_string buf "  locks: ";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (name, v) ->
                match v with
                | Json.String "free" -> name ^ "=free"
                | j -> name ^ "=t" ^ string_of_int (jint (mem "owner" j)))
              locks));
      Buffer.add_char buf '\n'
  | _ -> ());
  (match mem "outputs" state with
  | Json.List (_ :: _ as outs) ->
      Buffer.add_string buf "  outputs so far: ";
      Buffer.add_string buf (String.concat " | " (List.map jstr outs));
      Buffer.add_char buf '\n'
  | _ -> ());
  Buffer.contents buf
