(* MySQL #2 (bug 3596): database server, 693K LOC.

   A read-after-read (RAR) atomicity violation (the paper's Fig 2c): a
   worker reads a shared status twice, expecting both reads to see the
   same epoch; a concurrent flush thread bumps the epoch in between, and
   the worker's consistency assert fires. Reexecuting the two reads
   back-to-back recovers immediately — this is the paper's fastest
   recovery (8 microseconds, a single retry). *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "MySQL2";
    app_type = "Database server";
    loc_paper = "693K";
    failure = "assertion";
    cause = "A violation (RAR)";
    needs_oracle = false;
    needs_interproc = false;
    (* the clean variant only delays the flusher — the epoch write stays
         unsynchronized, so the race is still schedulable and SHB
         (rightly) reports it *)
    detect =
      {
        Bench_spec.races_buggy = [ "global:epoch" ];
        races_clean = [ "global:epoch" ];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "epoch" (Value.Int 0);
    B.global b "rows_flushed" (Value.Int 0);
    Mirlib.add_stdlib ~stages:48 ~reports:16 b;
    (* The worker: snapshot the epoch, plan the read, re-check the epoch.
       The two loads should be atomic. *)
    (B.func b "worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "e1" (Instr.Global "epoch");
     (* The injected sleep widens the atomicity window (§5); it sits inside
        the reexecution region, so a retry re-sleeps — recovery still takes
        a single reexecution, the fastest in the suite, as in the paper. *)
     if buggy then B.sleep f 10;
     B.move f "plan" (B.reg "e1");
     B.load f "e2" (Instr.Global "epoch");
     B.eq f "consistent" (B.reg "e1") (B.reg "e2");
     B.assert_ f (B.reg "consistent") ~msg:"epoch stable across snapshot";
     fix_iid := B.last_iid f;
     B.call f ~into:"tbl" "table_new" [ B.int 16 ];
     B.call f "table_put" [ B.reg "tbl"; B.int 16; B.reg "plan"; B.int 1 ];
     B.call f ~into:"ck" "run_pipeline" [ B.reg "tbl" ];
     B.call f ~into:"w" "compute_kernel" [ B.int 5000 ];
     B.output f "worker done epoch=%v" [ B.reg "e2" ];
     B.ret f None);
    (* The flush thread bumps the epoch exactly once. *)
    (B.func b "flusher" ~params:[] @@ fun f ->
     B.label f "entry";
     if not buggy then B.sleep f 500;
     B.store f (Instr.Global "epoch") (B.int 1);
     B.store f (Instr.Global "rows_flushed") (B.int 64);
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "worker"; "flusher" ]
  in
  let accept outs =
    List.mem "worker done epoch=1" outs || List.mem "worker done epoch=0" outs
  in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
