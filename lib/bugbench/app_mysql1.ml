(* MySQL #1 (bug 791): database server, 681K LOC.

   A WAW atomicity violation (the paper's Fig 2a): the log-rotation thread
   writes [log = CLOSE] and then [log = OPEN] without holding the lock the
   whole time; a query thread reading between the two writes sees the log
   closed and emits a wrong result. Rolling the *reader* back across its
   read recovers, provided the developer supplies the output oracle
   [assert (log == OPEN)]. *)

open Conair.Ir
module B = Builder

(* log states *)
let log_open = 1
let log_close = 0

let info =
  {
    Bench_spec.name = "MySQL1";
    app_type = "Database server";
    loc_paper = "681K";
    failure = "wrong output";
    cause = "A violation (WAW)";
    needs_oracle = true;
    needs_interproc = false;
    detect =
      {
        Bench_spec.races_buggy = [ "global:log_state" ];
        races_clean = [];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "log_state" (Value.Int log_open);
    B.global b "queries_served" (Value.Int 0);
    Mirlib.add_stdlib ~stages:48 ~reports:14 b;
    (* The rotation thread: close and immediately reopen the binlog. The
       pair should be atomic; the injected sleep opens the window. *)
    (B.func b "rotate_log" ~params:[] @@ fun f ->
     B.label f "entry";
     if buggy then B.sleep f 17_000;
     B.store f (Instr.Global "log_state") (B.int log_close);
     if buggy then B.sleep f 3_000;
     B.store f (Instr.Global "log_state") (B.int log_open);
     B.ret f None);
    (* A query thread: run the query workload, then log the result. *)
    (B.func b "query_thread" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"w" "compute_kernel" [ B.int 2500 ];
     B.call f ~into:"tbl" "table_new" [ B.int 8 ];
     B.call f "table_put" [ B.reg "tbl"; B.int 8; B.int 3; B.int 42 ];
     B.call f ~into:"r" "table_get" [ B.reg "tbl"; B.int 8; B.int 3 ];
     B.load f "log" (Instr.Global "log_state");
     B.eq f "is_open" (B.reg "log") (B.int log_open);
     if oracle then begin
       B.assert_ f ~oracle:true (B.reg "is_open") ~msg:"binlog is open";
       fix_iid := B.last_iid f
     end;
     B.store f (Instr.Global "queries_served") (B.int 1);
     B.output f "result=%v log=%v" [ B.reg "r"; B.reg "log" ];
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "rotate_log"; "query_thread" ]
  in
  let accept outs = List.mem "result=42 log=1" outs in
  Bench_spec.instance program ~accept
    ~fix_site_iids:(if oracle then [ !fix_iid ] else [])

let spec = { Bench_spec.info; make }
