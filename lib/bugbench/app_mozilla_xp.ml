(* Mozilla XPCOM: cross-platform component object model, 112K LOC.

   The paper's Fig 10: [GetState] dereferences the shared [mThd] pointer it
   received as a parameter; thread 2 may not have initialized [mThd] yet —
   an order violation causing a segmentation fault. The dereference's own
   function has no shared read in its region (the pointer arrives as a
   parameter), so recovery must be *inter-procedural*: the reexecution
   point lands in the caller [Get], just before [mThd] is re-read from the
   global. *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "MozillaXP";
    app_type = "XPCOM: component object model";
    loc_paper = "112K";
    failure = "seg. fault";
    cause = "O violation";
    needs_oracle = false;
    needs_interproc = true;
    detect =
      {
        Bench_spec.races_buggy = [ "global:mThd" ];
        races_clean = [];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "mThd" Value.Null;
    B.global b "events_handled" (Value.Int 0);
    Mirlib.add_stdlib ~stages:28 ~reports:6 b;
    (* GetState(thd): the failure site, one call level down. *)
    (B.func b "get_state" ~params:[ "thd" ] @@ fun f ->
     B.label f "entry";
     B.load_idx f "state" (B.reg "thd") (B.int 0);
     fix_iid := B.last_iid f;
     B.binop f "masked" Instr.Mod (B.reg "state") (B.int 16);
     B.ret f (Some (B.reg "masked")));
    (* Get(): reads the shared pointer and calls down. *)
    (B.func b "get" ~params:[] @@ fun f ->
     B.label f "entry";
     B.load f "p" (Instr.Global "mThd");
     B.call f ~into:"st" "get_state" [ B.reg "p" ];
     B.ret f (Some (B.reg "st")));
    (* The event-loop thread: process some events, then query the state. *)
    (B.func b "event_loop" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"events" "vec_new" [ B.int 8 ];
     B.move f "i" (B.int 0);
     B.label f "pump";
     B.lt f "more" (B.reg "i") (B.int 6);
     B.branch f (B.reg "more") "handle" "query";
     B.label f "handle";
     B.add f "ev" (B.reg "i") (B.int 100);
     B.call f "vec_push" [ B.reg "events"; B.reg "ev" ];
     B.call f ~into:"w" "compute_kernel" [ B.int 200 ];
     B.add f "i" (B.reg "i") (B.int 1);
     B.jump f "pump";
     B.label f "query";
     B.store f (Instr.Global "events_handled") (B.reg "i");
     B.call f ~into:"st" "get" [];
     B.call f ~into:"ck" "checksum" [ B.reg "events" ];
     B.output f "state=%v events=%v" [ B.reg "st"; B.reg "ck" ];
     B.ret f None);
    (* InitThd(): creates and publishes the thread object. *)
    (B.func b "init_thd" ~params:[] @@ fun f ->
     B.label f "entry";
     if buggy then B.sleep f 12_000;
     B.alloc f "thd" (B.int 2);
     B.store_idx f (B.reg "thd") (B.int 0) (B.int 35);
     B.store_idx f (B.reg "thd") (B.int 1) (B.int 1);
     B.store f (Instr.Global "mThd") (B.reg "thd");
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "event_loop"; "init_thd" ]
  in
  let accept outs =
    List.exists
      (fun o -> String.length o >= 7 && String.sub o 0 7 = "state=3")
      outs
  in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
