(* Mozilla JS engine: 120K LOC, deadlock.

   The GC thread takes the GC lock and then briefly needs the runtime
   lock; a script thread holds the runtime lock and requests the GC lock —
   a lock-order deadlock. The script thread's outer region contains its
   first acquisition, so ConAir can time out on the inner one, release the
   runtime lock and retry. *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "MozillaJS";
    app_type = "JavaScript engine";
    loc_paper = "120K";
    failure = "hang";
    cause = "deadlock";
    needs_oracle = false;
    needs_interproc = false;
    detect =
      {
        Bench_spec.races_buggy = [ "global:gc_bytes" ];
        races_clean = [];
        deadlock_buggy = true;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "gc_lock";
    B.mutex b "rt_lock";
    B.global b "gc_bytes" (Value.Int 4096);
    B.global b "script_done" (Value.Int 0);
    Mirlib.add_stdlib ~stages:30 ~reports:6 b;
    (* The garbage collector: gc_lock, mark (a write), then rt_lock. *)
    (B.func b "gc_thread" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "gc_lock");
     if buggy then B.sleep f 80;
     B.store f (Instr.Global "gc_bytes") (B.int 0);
     B.lock f (B.mutex_ref "rt_lock");
     B.load f "d" (Instr.Global "script_done");
     B.unlock f (B.mutex_ref "rt_lock");
     B.unlock f (B.mutex_ref "gc_lock");
     B.call f ~into:"w" "compute_kernel" [ B.int 1500 ];
     B.ret f None);
    (* A script thread: rt_lock, check the heap budget, maybe request GC. *)
    (B.func b "script_thread" ~params:[] @@ fun f ->
     B.label f "entry";
     if not buggy then B.sleep f 300;
     B.lock f (B.mutex_ref "rt_lock");
     B.load f "bytes" (Instr.Global "gc_bytes");
     B.gt f "need_gc" (B.reg "bytes") (B.int 1024);
     B.branch f (B.reg "need_gc") "request_gc" "run";
     B.label f "request_gc";
     B.lock f (B.mutex_ref "gc_lock");
     fix_iid := B.last_iid f;
     B.load f "b2" (Instr.Global "gc_bytes");
     B.output f "gc requested at %v bytes" [ B.reg "b2" ];
     B.unlock f (B.mutex_ref "gc_lock");
     B.jump f "run";
     B.label f "run";
     B.call f ~into:"r" "compute_kernel" [ B.int 50 ];
     B.store f (Instr.Global "script_done") (B.int 1);
     B.unlock f (B.mutex_ref "rt_lock");
     B.call f ~into:"w" "compute_kernel" [ B.int 1500 ];
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "gc_thread"; "script_thread" ]
  in
  let accept _ = true in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
