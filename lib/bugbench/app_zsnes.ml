(* ZSNES (bug 10918): game console emulator, 37K LOC.

   Order violation -> assertion failure: the render thread asserts on the
   shared video depth before the init thread has configured it. Rolling
   the render thread back across its read of the config global recovers
   once initialization lands. *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "ZSNES";
    app_type = "Game simulator";
    loc_paper = "37K";
    failure = "assertion";
    cause = "O violation";
    needs_oracle = false;
    needs_interproc = false;
    detect =
      {
        Bench_spec.races_buggy = [ "global:video_depth" ];
        races_clean = [];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "video_depth" (Value.Int 0);
    B.global b "frames_rendered" (Value.Int 0);
    Mirlib.add_stdlib ~stages:8 ~reports:3 b;
    (* The render thread: draw some frames, relying on the video config. *)
    (B.func b "render_thread" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"fb" "vec_new" [ B.int 12 ];
     B.call f ~into:"w" "compute_kernel" [ B.int 1200 ];
     B.move f "frame" (B.int 0);
     B.label f "frames";
     B.lt f "more" (B.reg "frame") (B.int 4);
     B.branch f (B.reg "more") "draw" "done_";
     B.label f "draw";
     B.load f "depth" (Instr.Global "video_depth");
     B.gt f "ok" (B.reg "depth") (B.int 0);
     B.assert_ f (B.reg "ok") ~msg:"video depth configured";
     (if !fix_iid < 0 then fix_iid := B.last_iid f);
     B.mul f "px" (B.reg "frame") (B.reg "depth");
     B.call f "vec_push" [ B.reg "fb"; B.reg "px" ];
     B.add f "frame" (B.reg "frame") (B.int 1);
     B.jump f "frames";
     B.label f "done_";
     B.store f (Instr.Global "frames_rendered") (B.reg "frame");
     B.call f ~into:"ck" "checksum" [ B.reg "fb" ];
     B.output f "rendered %v frames ck=%v" [ B.reg "frame"; B.reg "ck" ];
     B.ret f None);
    (* GUI init configures the video mode. *)
    (B.func b "gui_init" ~params:[] @@ fun f ->
     B.label f "entry";
     if buggy then B.sleep f 9_500;
     B.store f (Instr.Global "video_depth") (B.int 16);
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "render_thread"; "gui_init" ]
  in
  let accept outs =
    List.exists
      (fun o ->
        String.length o >= 17 && String.sub o 0 17 = "rendered 4 frames")
      outs
  in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
