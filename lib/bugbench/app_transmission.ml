(* Transmission (bug 1818): BitTorrent client, 95K LOC.

   Order violation -> assertion failure: [tr_sessionInitFull] publishes the
   bandwidth object [h->bandwidth] while another thread is already running
   the event loop; the consistency assert on the bandwidth object fires if
   the event thread gets there first. The assert sits in a helper that
   receives the object as a parameter, so — like MozillaXP — recovery
   needs the *inter-procedural* reexecution point in the caller that
   re-reads the shared pointer. *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "Transmission";
    app_type = "BitTorrent client";
    loc_paper = "95K";
    failure = "assertion";
    cause = "O violation";
    needs_oracle = false;
    needs_interproc = true;
    detect =
      {
        Bench_spec.races_buggy = [ "global:session_bandwidth" ];
        races_clean = [];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "session_bandwidth" Value.Null;
    B.global b "peers_connected" (Value.Int 0);
    Mirlib.add_stdlib ~stages:22 ~reports:24 b;
    (* assert_bandwidth(band): the failing consistency check, one call
       level down, on a parameter. *)
    (B.func b "assert_bandwidth" ~params:[ "band" ] @@ fun f ->
     B.label f "entry";
     B.unop f "is_nil" Instr.Is_null (B.reg "band");
     B.unop f "ok" Instr.Not (B.reg "is_nil");
     B.assert_ f (B.reg "ok") ~msg:"tr_isBandwidth(h->bandwidth)";
     fix_iid := B.last_iid f;
     B.ret f None);
    (* The event thread reads the shared session and validates it. *)
    (B.func b "event_thread" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"peers" "vec_new" [ B.int 8 ];
     B.call f "vec_push" [ B.reg "peers"; B.int 51413 ];
     B.call f ~into:"w" "compute_kernel" [ B.int 1200 ];
     B.load f "band" (Instr.Global "session_bandwidth");
     B.call f "assert_bandwidth" [ B.reg "band" ];
     B.load_idx f "rate" (B.reg "band") (B.int 0);
     B.call f ~into:"n" "vec_len" [ B.reg "peers" ];
     B.store f (Instr.Global "peers_connected") (B.reg "n");
     B.output f "event loop up, rate=%v" [ B.reg "rate" ];
     B.ret f None);
    (* Session init publishes the bandwidth object late. *)
    (B.func b "session_init" ~params:[] @@ fun f ->
     B.label f "entry";
     if buggy then B.sleep f 9_500;
     B.alloc f "band" (B.int 2);
     B.store_idx f (B.reg "band") (B.int 0) (B.int 100);
     B.store f (Instr.Global "session_bandwidth") (B.reg "band");
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "event_thread"; "session_init" ]
  in
  let accept outs = List.mem "event loop up, rate=100" outs in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
