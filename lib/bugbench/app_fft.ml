(* FFT (SPLASH-2): scientific computing, 1.2K LOC.

   The paper's Fig 9: thread 1 prints timing statistics and may read the
   shared [end_time] before the timer thread has written it — an
   atomicity/order violation causing a wrong-output failure. With the
   developer oracle [assert (tmp > 0)] present, ConAir rolls the reporter
   back until the timer has written.

   The transform stage runs a long register-only FFT-like kernel before
   reporting, which is what makes whole-program restart so much more
   expensive than ConAir recovery for this benchmark (Table 7). *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "FFT";
    app_type = "Scientific computing";
    loc_paper = "1.2K";
    failure = "wrong output";
    cause = "A/O violation";
    needs_oracle = true;
    needs_interproc = false;
    detect =
      {
        Bench_spec.races_buggy = [ "global:end_time" ];
        races_clean = [];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "init_time" (Value.Int 5);
    B.global b "end_time" (Value.Int 0);
    B.global b "transform_sum" (Value.Int 0);
    Mirlib.add_stdlib ~stages:2 ~reports:2 b;
    (* Thread 1: run the transform, then report timing. *)
    (B.func b "fft_worker" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"sum" "compute_kernel" [ B.int 8000 ];
     B.store f (Instr.Global "transform_sum") (B.reg "sum");
     B.load f "init" (Instr.Global "init_time");
     B.output f "Start %v" [ B.reg "init" ];
     B.load f "tmp" (Instr.Global "end_time");
     B.gt f "ok" (B.reg "tmp") (B.int 0);
     if oracle then begin
       B.assert_ f ~oracle:true (B.reg "ok") ~msg:"end_time written";
       fix_iid := B.last_iid f
     end;
     B.sub f "total" (B.reg "tmp") (B.reg "init");
     B.output f "Stop %v, Total %v" [ B.reg "tmp"; B.reg "total" ];
     B.ret f None);
    (* Thread 2: the timer that publishes end_time. *)
    (B.func b "fft_timer" ~params:[] @@ fun f ->
     B.label f "entry";
     if buggy then B.sleep f 57_000;
     B.store f (Instr.Global "end_time") (B.int 128);
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "fft_worker"; "fft_timer" ]
  in
  let accept outs = List.mem "Stop 128, Total 123" outs in
  Bench_spec.instance program ~accept
    ~fix_site_iids:(if oracle then [ !fix_iid ] else [])

let spec = { Bench_spec.info; make }
