(* HTTrack: a web crawler, 55K LOC.

   Order violation -> segmentation fault: the crawler back-end thread
   dereferences the shared [opt] settings object before the front-end
   thread has allocated and published it. ConAir's pointer sanity check
   catches the null/garbage pointer and rolls the back-end thread back
   until the settings are published. *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "HTTrack";
    app_type = "Web crawler";
    loc_paper = "55K";
    failure = "seg. fault";
    cause = "O violation";
    needs_oracle = false;
    needs_interproc = false;
    detect =
      {
        Bench_spec.races_buggy = [ "global:global_opt" ];
        races_clean = [];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "global_opt" Value.Null;
    B.global b "pages_done" (Value.Int 0);
    Mirlib.add_stdlib ~stages:14 ~reports:40 b;
    (* The crawler back end: fetch pages, then consult the shared settings
       object for the mirror depth. *)
    (B.func b "backend" ~params:[] @@ fun f ->
     B.label f "entry";
     B.call f ~into:"pages" "vec_new" [ B.int 16 ];
     B.move f "i" (B.int 0);
     B.label f "fetch";
     B.lt f "more" (B.reg "i") (B.int 8);
     B.branch f (B.reg "more") "one" "consult";
     B.label f "one";
     B.mul f "page" (B.reg "i") (B.int 17);
     B.call f "vec_push" [ B.reg "pages"; B.reg "page" ];
     B.call f ~into:"parsed" "compute_kernel" [ B.int 400 ];
     B.add f "i" (B.reg "i") (B.int 1);
     B.jump f "fetch";
     B.label f "consult";
     (* The bug: global_opt may still be null here. *)
     B.load f "opt" (Instr.Global "global_opt");
     B.load_idx f "depth" (B.reg "opt") (B.int 0);
     fix_iid := B.last_iid f;
     B.call f ~into:"ck" "run_pipeline" [ B.reg "pages" ];
     B.store f (Instr.Global "pages_done") (B.reg "i");
     B.output f "mirror depth=%v checksum=%v" [ B.reg "depth"; B.reg "ck" ];
     B.ret f None);
    (* The front end publishes the settings object. *)
    (B.func b "frontend" ~params:[] @@ fun f ->
     B.label f "entry";
     if buggy then B.sleep f 24_000;
     B.alloc f "opt" (B.int 4);
     B.store_idx f (B.reg "opt") (B.int 0) (B.int 5);
     B.store_idx f (B.reg "opt") (B.int 1) (B.int 1);
     B.store f (Instr.Global "global_opt") (B.reg "opt");
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "backend"; "frontend" ]
  in
  let accept outs =
    List.exists
      (fun o ->
        String.length o >= 14 && String.sub o 0 14 = "mirror depth=5")
      outs
  in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
