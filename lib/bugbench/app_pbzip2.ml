(* PBZIP2 (extended set — not in the paper's Table 2, but a classic of the
   concurrency-bug-study literature, e.g. ConMem): the main thread tears
   down the shared FIFO while a consumer is still using it — an order
   violation causing a use-after-free segmentation fault.

   The consumer checks a [closed] flag before touching the FIFO, but the
   check and the use are not atomic; ConAir's pointer guard catches the
   dereference of the freed block, and reexecution re-reads [closed],
   taking the shutdown path instead. *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "PBZIP2";
    app_type = "Parallel compressor (extended set)";
    loc_paper = "2K";
    failure = "seg. fault";
    cause = "O violation (UAF)";
    needs_oracle = false;
    needs_interproc = false;
    (* both variants leave [closed] unsynchronized (the clean one only
         reorders by timing); the buggy schedule additionally races the
         freed queue cell *)
    detect =
      {
        Bench_spec.races_buggy = [ "cell:0:0"; "global:closed" ];
        races_clean = [ "global:closed" ];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.global b "fifo" Value.Null;
    B.global b "closed" (Value.Int 0);
    B.global b "consumed" (Value.Int 0);
    Mirlib.add_stdlib ~stages:3 ~reports:2 b;
    (* The consumer: drain blocks until the queue closes. *)
    (B.func b "consumer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.move f "total" (B.int 0);
     B.label f "loop";
     B.load f "cl" (Instr.Global "closed");
     B.unop f "open_" Instr.Not (B.reg "cl");
     B.branch f (B.reg "open_") "use" "finish";
     B.label f "use";
     (* the race window between the check and the use *)
     if buggy then B.sleep f 80;
     B.load f "q" (Instr.Global "fifo");
     B.load_idx f "blk" (B.reg "q") (B.int 0);
     fix_iid := B.last_iid f;
     B.add f "total" (B.reg "total") (B.reg "blk");
     B.call f ~into:"w" "compute_kernel" [ B.int 30 ];
     B.jump f "loop";
     B.label f "finish";
     B.store f (Instr.Global "consumed") (B.reg "total");
     B.output f "consumed %v" [ B.reg "total" ];
     B.ret f None);
    (* The teardown thread. The bug is the order: the buggy variant frees
       the FIFO *before* publishing [closed]; the fixed (clean) variant
       only closes, and the memory is reclaimed after the joins. *)
    (B.func b "teardown" ~params:[] @@ fun f ->
     B.label f "entry";
     if buggy then begin
       B.sleep f 650;
       B.load f "q" (Instr.Global "fifo");
       B.free f (B.reg "q")
     end
     else B.sleep f 40;
     B.store f (Instr.Global "closed") (B.int 1);
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.alloc f "q" (B.int 4);
    B.store_idx f (B.reg "q") (B.int 0) (B.int 7);
    B.store f (Instr.Global "fifo") (B.reg "q");
    B.spawn f "t1" "consumer" [];
    B.spawn f "t2" "teardown" [];
    B.join f (B.reg "t1");
    B.join f (B.reg "t2");
    (if not buggy then begin
       B.load f "q2" (Instr.Global "fifo");
       B.free f (B.reg "q2")
     end);
    B.exit_ f
  in
  let accept outs =
    List.exists
      (fun o -> String.length o >= 9 && String.sub o 0 9 = "consumed ")
      outs
  in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
