(* The shape of one benchmark: Table 2 metadata plus a program factory.

   [`Buggy] instances inject the sleeps that force the failure-inducing
   interleaving (§5 of the paper: "we insert sleeps into each program's
   buggy code regions"); [`Clean] instances order the threads so the bug
   does not fire — those are used for the overhead measurements, where "no
   sleep is inserted and software never fails". *)

open Conair.Ir

type variant = Buggy | Clean

(* What the dynamic detector must find on each variant, measured under
   the standard detection configuration — hardened (survival mode, with
   the oracle iff [needs_oracle]), round-robin scheduling — and verified
   by the ground-truth test. Race addresses are [Report.addr_string]
   forms ("global:x", "cell:block:off"), deduplicated and sorted;
   deadlock means an *actual* lock-order cycle (closed among
   simultaneously blocked requests), not a merely potential one.

   A non-empty [races_clean] is honest, not a false positive: some
   benchmarks' clean variants differ from the buggy ones only by timing
   (a sleep moved, not a lock added), so the race remains schedulable
   and SHB still sees it — MySQL2 is the canonical case. *)
type ground_truth = {
  races_buggy : string list;
  races_clean : string list;
  deadlock_buggy : bool;
  deadlock_clean : bool;
}

let quiet =
  {
    races_buggy = [];
    races_clean = [];
    deadlock_buggy = false;
    deadlock_clean = false;
  }

type info = {
  name : string;
  app_type : string;  (** Table 2 "App. Type" *)
  loc_paper : string;  (** Table 2 "LOC" — the original application's size *)
  failure : string;  (** Table 2 "Failures" *)
  cause : string;  (** Table 2 "Causes" *)
  needs_oracle : bool;
      (** wrong-output bugs recover only when the developer supplies an
          output-correctness assert (Table 3's "conditionally recovered") *)
  needs_interproc : bool;  (** MozillaXP and Transmission in the paper *)
  detect : ground_truth;
      (** what the race/deadlock detector finds on each variant *)
}

type instance = {
  program : Program.t;
  fix_site_iids : int list;
      (** the failing instruction(s) a user would report in fix mode *)
  accept : string list -> bool;
      (** does this output list constitute a correct run? *)
}

type t = {
  info : info;
  (* [oracle] controls whether developer-written output-correctness asserts
     are present (survival mode cannot detect wrong output without them). *)
  make : variant:variant -> oracle:bool -> instance;
}

let instance ?(fix_site_iids = []) ?(accept = fun _ -> true) program =
  { program; fix_site_iids; accept }
