(* SQLite (bug 1672): database engine, 67K LOC, deadlock.

   Two connections race on the database lock and the journal lock in
   opposite orders during a commit. The committing thread's outer region
   contains its first acquisition, so ConAir times out on the inner lock,
   releases the journal lock and retries the commit sequence. *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "SQLite";
    app_type = "Database engine";
    loc_paper = "67K";
    failure = "hang";
    cause = "deadlock";
    needs_oracle = false;
    needs_interproc = false;
    detect =
      {
        Bench_spec.races_buggy = [ "global:dirty_pages" ];
        races_clean = [];
        deadlock_buggy = true;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "db_lock";
    B.mutex b "journal_lock";
    B.global b "dirty_pages" (Value.Int 12);
    B.global b "committed" (Value.Int 0);
    Mirlib.add_stdlib ~stages:14 ~reports:4 b;
    (* Connection 1: checkpoint the journal — db_lock then journal_lock,
       with a page flush (a shared write) in between. *)
    (B.func b "checkpointer" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "db_lock");
     if buggy then B.sleep f 70;
     B.store f (Instr.Global "dirty_pages") (B.int 0);
     B.lock f (B.mutex_ref "journal_lock");
     B.store f (Instr.Global "committed") (B.int 1);
     B.unlock f (B.mutex_ref "journal_lock");
     B.unlock f (B.mutex_ref "db_lock");
     B.call f ~into:"w" "compute_kernel" [ B.int 1500 ];
     B.ret f None);
    (* Connection 2: commit — journal_lock then (if dirty) db_lock. *)
    (B.func b "committer" ~params:[] @@ fun f ->
     B.label f "entry";
     if not buggy then B.sleep f 250;
     B.lock f (B.mutex_ref "journal_lock");
     B.load f "dirty" (Instr.Global "dirty_pages");
     B.gt f "need_db" (B.reg "dirty") (B.int 0);
     B.branch f (B.reg "need_db") "take_db" "finish";
     B.label f "take_db";
     B.lock f (B.mutex_ref "db_lock");
     fix_iid := B.last_iid f;
     B.load f "d2" (Instr.Global "dirty_pages");
     B.output f "commit flushed %v pages" [ B.reg "d2" ];
     B.unlock f (B.mutex_ref "db_lock");
     B.jump f "finish";
     B.label f "finish";
     B.unlock f (B.mutex_ref "journal_lock");
     B.call f ~into:"w" "compute_kernel" [ B.int 1500 ];
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "checkpointer"; "committer" ]
  in
  Bench_spec.instance program ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
