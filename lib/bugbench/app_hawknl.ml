(* HawkNL: a network library, 10K LOC.

   The paper's Fig 11: [Close] takes [nlock] then [slock]; [Shutdown]
   takes [slock] then (if sockets remain) [nlock] — a classic lock-order
   deadlock. ConAir finds that Shutdown's inner acquisition has [Lock
   slock] inside its reexecution region, turns it into a timed lock, and on
   timeout releases [slock] and reexecutes a large chunk of Shutdown. *)

open Conair.Ir
module B = Builder

let info =
  {
    Bench_spec.name = "HawkNL";
    app_type = "Network library";
    loc_paper = "10K";
    failure = "hang";
    cause = "deadlock";
    needs_oracle = false;
    needs_interproc = false;
    (* the deadlock closes for real on the buggy schedule; clean runs
         only ever witness the inconsistent order (a potential cycle) *)
    detect =
      {
        Bench_spec.races_buggy = [];
        races_clean = [];
        deadlock_buggy = true;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "nlock";
    B.mutex b "slock";
    B.global b "n_sockets" (Value.Int 4);
    B.global b "driver_state" (Value.Int 1);
    Mirlib.add_stdlib ~stages:3 ~reports:2 b;
    (* nlClose: nlock -> driver->Close() -> slock *)
    (B.func b "nl_close" ~params:[] @@ fun f ->
     B.label f "entry";
     B.lock f (B.mutex_ref "nlock");
     if buggy then B.sleep f 60;
     B.store f (Instr.Global "driver_state") (B.int 0);
     B.lock f (B.mutex_ref "slock");
     B.load f "n" (Instr.Global "n_sockets");
     B.sub f "n" (B.reg "n") (B.int 1);
     B.store f (Instr.Global "n_sockets") (B.reg "n");
     B.unlock f (B.mutex_ref "slock");
     B.unlock f (B.mutex_ref "nlock");
     B.call f ~into:"w" "compute_kernel" [ B.int 1500 ];
     B.ret f None);
    (* nlShutdown: slock -> (if sockets) nlock *)
    (B.func b "nl_shutdown" ~params:[] @@ fun f ->
     B.label f "entry";
     if not buggy then B.sleep f 200;
     B.lock f (B.mutex_ref "slock");
     B.load f "n" (Instr.Global "n_sockets");
     B.gt f "has" (B.reg "n") (B.int 0);
     B.branch f (B.reg "has") "close_socks" "out";
     B.label f "close_socks";
     B.lock f (B.mutex_ref "nlock");
     fix_iid := B.last_iid f;
     B.load f "d" (Instr.Global "driver_state");
     B.output f "shutdown with driver=%v" [ B.reg "d" ];
     B.unlock f (B.mutex_ref "nlock");
     B.jump f "out";
     B.label f "out";
     B.store f (Instr.Global "n_sockets") (B.int 0);
     B.unlock f (B.mutex_ref "slock");
     B.call f ~into:"w" "compute_kernel" [ B.int 1500 ];
     B.ret f None);
    Mirlib.two_thread_main b ~threads:[ "nl_close"; "nl_shutdown" ]
  in
  let accept outs =
    List.exists (fun o -> String.length o > 0 && o.[0] = 's') outs
  in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
