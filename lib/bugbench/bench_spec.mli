(** The shape of one benchmark application: Table 2 metadata plus a
    program factory. [Buggy] instances inject the sleeps that force the
    failure-inducing interleaving (§5); [Clean] instances order the
    threads so the bug does not fire — those serve the overhead
    measurements, where "no sleep is inserted and software never fails". *)

open Conair.Ir

type variant = Buggy | Clean

(** Expected detector findings per variant, under the standard detection
    configuration: hardened survival mode (oracle iff [needs_oracle]),
    round-robin scheduling. Races are deduplicated sorted
    [Report.addr_string] forms; deadlock means an {e actual} lock-order
    cycle. A non-empty [races_clean] marks a clean variant whose fix is
    timing-only, leaving the race schedulable (e.g. MySQL2). *)
type ground_truth = {
  races_buggy : string list;
  races_clean : string list;
  deadlock_buggy : bool;
  deadlock_clean : bool;
}

val quiet : ground_truth
(** Nothing on either variant. *)

type info = {
  name : string;
  app_type : string;  (** Table 2 "App. Type" *)
  loc_paper : string;  (** Table 2 "LOC" of the original application *)
  failure : string;
  cause : string;
  needs_oracle : bool;
      (** wrong-output bugs recover only given a developer
          output-correctness assert (Table 3's "conditionally recovered") *)
  needs_interproc : bool;  (** MozillaXP and Transmission in the paper *)
  detect : ground_truth;
      (** what the race/deadlock detector finds on each variant *)
}

type instance = {
  program : Program.t;
  fix_site_iids : int list;
      (** the failing instruction(s) a user would report in fix mode *)
  accept : string list -> bool;
      (** is this output list a correct run? *)
}

type t = {
  info : info;
  make : variant:variant -> oracle:bool -> instance;
      (** [oracle] includes the developer output-correctness asserts *)
}

val instance :
  ?fix_site_iids:int list ->
  ?accept:(string list -> bool) ->
  Program.t ->
  instance
