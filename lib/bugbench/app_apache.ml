(* Apache (extended set — bug #25520's shape, studied across the
   concurrency-bug literature): the log writer checks the shared buffer
   length *outside* the critical section before reserving a slot — a
   check-then-act atomicity violation. When the flusher lags, a writer
   reads a stale length, the capacity assert fires; rolling the writer
   back re-reads the length after the flusher reset it. *)

open Conair.Ir
module B = Builder

let cap = 6

let info =
  {
    Bench_spec.name = "Apache";
    app_type = "HTTP server (extended set)";
    loc_paper = "220K";
    failure = "assertion";
    cause = "A violation (TOCTOA)";
    needs_oracle = false;
    needs_interproc = false;
    (* the clean variant is timing-ordered, not lock-ordered: the log
         buffer race stays schedulable on both *)
    detect =
      {
        Bench_spec.races_buggy = [ "global:loglen" ];
        races_clean = [ "global:loglen" ];
        deadlock_buggy = false;
        deadlock_clean = false;
      };
  }

let make ~variant ~oracle:_ : Bench_spec.instance =
  let buggy = variant = Bench_spec.Buggy in
  let fix_iid = ref (-1) in
  let program =
    B.build ~main:"main" @@ fun b ->
    B.mutex b "loglock";
    B.global b "loglen" (Value.Int 0);
    B.global b "logbuf" Value.Null;
    B.global b "flushes" (Value.Int 0);
    Mirlib.add_stdlib ~stages:4 ~reports:4 b;
    (* A request worker: appends [n] log lines. The length check happens
       before taking the lock — the bug. *)
    (B.func b "log_append" ~params:[ "line" ] @@ fun f ->
     B.label f "entry";
     B.load f "len" (Instr.Global "loglen");
     B.lt f "fits" (B.reg "len") (B.int cap);
     B.assert_ f (B.reg "fits") ~msg:"log buffer has room";
     fix_iid := B.last_iid f;
     B.lock f (B.mutex_ref "loglock");
     B.load f "len2" (Instr.Global "loglen");
     B.load f "buf" (Instr.Global "logbuf");
     B.store_idx f (B.reg "buf") (B.reg "len2") (B.reg "line");
     B.add f "len2" (B.reg "len2") (B.int 1);
     B.store f (Instr.Global "loglen") (B.reg "len2");
     B.unlock f (B.mutex_ref "loglock");
     B.ret f None);
    (B.func b "worker" ~params:[ "base" ] @@ fun f ->
     B.label f "entry";
     B.move f "i" (B.int 0);
     B.label f "serve";
     B.lt f "more" (B.reg "i") (B.int 5);
     B.branch f (B.reg "more") "one" "done_";
     B.label f "one";
     B.call f ~into:"w" "compute_kernel" [ B.int 15 ];
     B.add f "line" (B.reg "base") (B.reg "i");
     B.call f "log_append" [ B.reg "line" ];
     B.add f "i" (B.reg "i") (B.int 1);
     B.jump f "serve";
     B.label f "done_";
     B.ret f None);
    (* The flusher periodically resets the buffer. When it lags (the bug
       window), the writers fill the buffer to capacity. *)
    (B.func b "flusher" ~params:[] @@ fun f ->
     B.label f "entry";
     B.move f "rounds" (B.int 0);
     B.label f "loop";
     B.lt f "more" (B.reg "rounds") (B.int 6);
     B.branch f (B.reg "more") "flush" "done_";
     B.label f "flush";
     B.sleep f (if buggy then 1400 else 80);
     B.lock f (B.mutex_ref "loglock");
     B.store f (Instr.Global "loglen") (B.int 0);
     B.unlock f (B.mutex_ref "loglock");
     B.load f "n" (Instr.Global "flushes");
     B.add f "n" (B.reg "n") (B.int 1);
     B.store f (Instr.Global "flushes") (B.reg "n");
     B.add f "rounds" (B.reg "rounds") (B.int 1);
     B.jump f "loop";
     B.label f "done_";
     B.ret f None);
    B.func b "main" ~params:[] @@ fun f ->
    B.label f "entry";
    B.alloc f "buf" (B.int cap);
    B.store f (Instr.Global "logbuf") (B.reg "buf");
    B.spawn f "w1" "worker" [ B.int 100 ];
    B.spawn f "w2" "worker" [ B.int 200 ];
    B.spawn f "fl" "flusher" [];
    B.join f (B.reg "w1");
    B.join f (B.reg "w2");
    B.load f "len" (Instr.Global "loglen");
    B.output f "served 10 requests, pending log lines = %v" [ B.reg "len" ];
    B.exit_ f
  in
  let accept outs =
    List.exists
      (fun o ->
        String.length o >= 18 && String.sub o 0 18 = "served 10 requests")
      outs
  in
  Bench_spec.instance program ~accept ~fix_site_iids:[ !fix_iid ]

let spec = { Bench_spec.info; make }
