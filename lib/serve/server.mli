(** The recovery-as-a-service daemon: an accept loop over a Unix or
    TCP socket, per-connection reader and writer threads, jobs on a
    bounded per-tenant-FIFO worker pool, and shared live telemetry.
    See [docs/SERVER.md] for the protocol and operational model. *)

type address = Unix_path of string | Tcp of string * int

type config = {
  address : address;
  workers : int;
  max_pending : int;  (** pool backpressure bound *)
  max_program_bytes : int;  (** inline payload guard *)
  max_outbox : int;  (** per-connection response-queue bound *)
}

val default_config : address -> config
(** 4 workers, 256 pending, 1 MB payloads, 4096-line outboxes. *)

type t

val create : config -> t
(** Bind and listen (unlinking a stale Unix socket path first).
    @raise Unix.Unix_error when the address cannot be bound. *)

val serve : t -> unit
(** Run the accept loop until a client sends [shutdown]. Drains every
    queued and in-flight job, flushes outboxes, joins every thread,
    closes and (for Unix sockets) unlinks the listening socket. *)

val start : config -> t * Thread.t
(** [create] + [serve] on a fresh thread — the in-process form the
    test suite uses. Join the thread after a shutdown request. *)

val request_stop : t -> unit
(** Programmatic shutdown: what a [shutdown] request triggers. *)
