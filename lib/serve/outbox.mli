(** A per-connection outbox: a bounded queue of response lines drained
    by a dedicated writer thread, so pool workers never touch sockets.

    A full queue blocks the producer (backpressure toward the pool); a
    dead peer flips the outbox to discard mode, where every queued and
    future line is dropped and producers never block — a vanished
    client cannot wedge a worker. *)

type t

val create : ?max:int -> Unix.file_descr -> t
(** Spawn the writer thread. [max] (default 1024, floored at 1) bounds
    the queued-line count. *)

val send : t -> string -> unit
(** Enqueue one line (newline appended on the wire). Blocks on a full
    queue; drops silently once the peer is gone or {!close} began. *)

val send_json : t -> Conair_obs.Json.t -> unit
(** {!send} of the compact encoding. *)

val is_dead : t -> bool

val kill : t -> unit
(** Mark the peer gone: discard queued lines, unblock producers. *)

val close : t -> unit
(** Flush queued lines (unless dead), stop and join the writer. Does
    not close the file descriptor — the connection owner does. *)
