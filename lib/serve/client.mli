(** A minimal blocking client for the daemon's line protocol, used by
    the stress driver and the test suite. One value per connection;
    coordinate externally before sharing across threads. *)

module Json = Conair_obs.Json

type t

val connect : ?timeout:float -> Server.address -> t
(** Connect, retrying refused/absent sockets (the daemon may still be
    binding) for up to [timeout] seconds (default 10).
    @raise Unix.Unix_error when the deadline passes. *)

val send : t -> Protocol.request -> unit

val recv : t -> Json.t option
(** Next response frame; [None] on EOF. An unparsable frame decodes as
    an error frame rather than raising. *)

val frame_type : Json.t -> string
(** The frame's ["type"] member, or [""]. *)

val recv_until :
  ?other:(Json.t -> unit) -> t -> (Json.t -> bool) -> Json.t option
(** Read frames until one satisfies the predicate, passing the others
    to [other]; [None] on EOF. *)

val submit :
  ?other:(Json.t -> unit) ->
  t ->
  tenant:string ->
  id:string ->
  Protocol.spec ->
  (Json.t * Json.t list, string) result
(** Submit one job and collect its frames: waits for the ack, gathers
    the telemetry lines, returns [(result_frame, telemetry_lines)].
    Frames belonging to other jobs go to [other]. *)

val close : t -> unit
