(* A minimal blocking client for the daemon's line protocol, used by
   the stress driver and the test suite. One [t] per connection; safe
   to share across threads only if sends and receives are externally
   coordinated (the stress driver uses one connection per tenant
   thread). *)

module Json = Conair_obs.Json

type t = { fd : Unix.file_descr; ic : in_channel; mutable closed : bool }

let rec connect_retry addr deadline =
  let fd =
    Unix.socket
      (match addr with
      | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
      | Unix.ADDR_INET _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  match Unix.connect fd addr with
  | () -> fd
  | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
    when Unix.gettimeofday () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Thread.delay 0.02;
      connect_retry addr deadline

(* Connect to the daemon, retrying (daemon may still be binding) until
   [timeout] seconds have passed. *)
let connect ?(timeout = 10.) (address : Server.address) =
  (* A daemon that exits mid-request must surface as EPIPE, not kill
     the client process. *)
  (if Sys.os_type = "Unix" then
     try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
     with Invalid_argument _ | Sys_error _ -> ());
  let addr =
    match address with
    | Server.Unix_path p -> Unix.ADDR_UNIX p
    | Server.Tcp (host, port) ->
        Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let fd = connect_retry addr (Unix.gettimeofday () +. timeout) in
  { fd; ic = Unix.in_channel_of_descr fd; closed = false }

let send t (req : Protocol.request) =
  let line = Protocol.request_to_line req ^ "\n" in
  let b = Bytes.of_string line in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write t.fd b off (n - off))
  in
  go 0

(* Next response frame, decoded. [None] on EOF. *)
let recv t =
  match In_channel.input_line t.ic with
  | None -> None
  | Some line -> (
      match Json.of_string line with
      | Ok j -> Some j
      | Error e -> Some (Protocol.error (Printf.sprintf "unparsable frame: %s" e)))

let frame_type j =
  match Json.member "type" j with Some (Json.String s) -> s | _ -> ""

(* Read frames until one satisfies [pred]; frames that do not match are
   passed to [other]. [None] on EOF first. *)
let recv_until ?(other = fun (_ : Json.t) -> ()) t pred =
  let rec go () =
    match recv t with
    | None -> None
    | Some j -> if pred j then Some j else (other j; go ())
  in
  go ()

(* Submit a job and collect its full frame sequence: the ack, every
   telemetry line, and the result. Frames for other (tenant, id) pairs
   — there are none when the connection is used by a single tenant
   thread — are passed to [other]. *)
let submit ?(other = fun (_ : Json.t) -> ()) t ~tenant ~id job =
  send t (Protocol.Submit { tenant; id; job });
  let mine j =
    (match Json.member "tenant" j with
    | Some (Json.String t') -> t' = tenant
    | _ -> false)
    && match Json.member "id" j with
       | Some (Json.String i) -> i = id
       | _ -> false
  in
  match recv_until ~other t (fun j -> mine j && frame_type j = "ack") with
  | None -> Error "eof before ack"
  | Some _ack ->
      let telemetry = ref [] in
      let rec go () =
        match recv t with
        | None -> Error "eof before result"
        | Some j ->
            if mine j && frame_type j = "telemetry" then begin
              (match Json.member "line" j with
              | Some l -> telemetry := l :: !telemetry
              | None -> ());
              go ()
            end
            else if mine j && frame_type j = "result" then
              Ok (j, List.rev !telemetry)
            else if mine j && frame_type j = "error" then
              Error
                (match Json.member "message" j with
                | Some (Json.String m) -> m
                | _ -> "job error")
            else begin
              other j;
              go ()
            end
      in
      go ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
