(** Job execution — one function per protocol job kind, each sharing
    its code path with the corresponding CLI subcommand so that served
    reports are byte-identical to CLI output for the same inputs (run
    jobs go through {!Conair.run_report_of}, detection through
    {!Conair.run_detected}/{!Conair.detect_hardened}, minimization
    through {!Conair.minimize}). Exit codes mirror the CLI: 0 ok, 2
    failed run, 3 detector findings. *)

module Json = Conair_obs.Json

type outcome = {
  jr_status : string;  (** "ok" | "error" *)
  jr_exit : int;  (** the CLI-equivalent exit code *)
  jr_report : Json.t;  (** the job's structured result document *)
  jr_record : Json.t option;
      (** fuzz-style run record, for cross-job aggregation *)
  jr_spans : Json.t option;  (** Chrome trace document (run jobs) *)
  jr_bundle : Json.t option;
      (** flight-recorder diagnostic bundle — present when a run job's
          observed execution failed; a deterministic capture re-run under
          the job's exact config and engine, byte-identical to the CLI's
          [--flight] dump for the same inputs *)
}

val run_record : case:string -> seed:int -> Conair.run -> Json.t
(** The fuzzer's per-run record shape — {!Conair_obs.Aggregate}'s input
    vocabulary. *)

val execute : ?telemetry:(Json.t -> unit) -> Protocol.spec -> outcome
(** Execute one job, streaming per-job telemetry records (trace-event
    lines for run jobs, per-seed run records for fuzz jobs) through
    [telemetry] as they are produced. Never raises: failures come back
    as an ["error"] outcome. *)
