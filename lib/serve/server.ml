(* The recovery-as-a-service daemon: accept loop, per-connection reader
   threads, and the wiring between the protocol, the worker pool and
   the shared telemetry registry.

   Threading model: the accept loop runs in [serve]'s calling thread;
   each connection gets one reader thread (parsing request lines) and
   one outbox writer thread (draining response lines); submitted jobs
   execute on the pool's workers. A worker publishes frames only
   through the submitting connection's outbox, so a slow or vanished
   client exerts backpressure on (or is discarded by) its own outbox
   and never blocks another tenant's connection.

   Shutdown: a [shutdown] request stops the accept loop, drains every
   queued and in-flight job (the pool's guarantee), flushes outboxes
   and returns from [serve]. *)

module Json = Conair_obs.Json

type address = Unix_path of string | Tcp of string * int

type config = {
  address : address;
  workers : int;
  max_pending : int;  (** pool backpressure bound *)
  max_program_bytes : int;  (** inline payload guard *)
  max_outbox : int;  (** per-connection response-queue bound *)
}

let default_config address =
  {
    address;
    workers = 4;
    max_pending = 256;
    max_program_bytes = 1_000_000;
    max_outbox = 4096;
  }

type t = {
  cfg : config;
  pool : Pool.t;
  telemetry : Telemetry.t;
  listen_fd : Unix.file_descr;
  mutable stop : bool;
  stop_mu : Mutex.t;
  mutable conns : Thread.t list;  (** every connection thread, for join *)
  mutable conn_fds : (int * Unix.file_descr) list;
      (** live connection sockets; entries leave before their fd closes,
          so the shutdown path can safely force-EOF blocked readers *)
  mutable conn_ids : int;
  conns_mu : Mutex.t;
}

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let listen_on address =
  let domain =
    match address with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  (match address with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (sockaddr_of address);
  Unix.listen fd 64;
  fd

let stopping t =
  Mutex.lock t.stop_mu;
  let s = t.stop in
  Mutex.unlock t.stop_mu;
  s

let request_stop t =
  Mutex.lock t.stop_mu;
  t.stop <- true;
  Mutex.unlock t.stop_mu;
  (* wake the accept loop: it is blocked in [accept]; closing the
     listening socket makes it raise and observe [stop] *)
  try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
  with Unix.Unix_error _ -> ()

(* --- per-request handling ------------------------------------------ *)

let handle_submit t out ~tenant ~id job =
  Telemetry.note_submitted t.telemetry ~tenant ~kind:(Protocol.kind_name job);
  let work () =
    Telemetry.note_started t.telemetry;
    let started = Unix.gettimeofday () in
    let telemetry j =
      Telemetry.note_telemetry t.telemetry ~tenant;
      Outbox.send_json out (Protocol.telemetry ~tenant ~id j)
    in
    let r = Job.execute ~telemetry job in
    let elapsed = Unix.gettimeofday () -. started in
    Telemetry.note_finished t.telemetry ~tenant ~id
      ~kind:(Protocol.kind_name job) ~status:r.Job.jr_status
      ~exit:r.Job.jr_exit ~elapsed ?record:r.Job.jr_record
      ?spans:r.Job.jr_spans ?bundle:r.Job.jr_bundle ();
    Outbox.send_json out
      (Protocol.result ~tenant ~id ~status:r.Job.jr_status ~exit:r.Job.jr_exit
         ~elapsed_ms:(Float.round (elapsed *. 1000.))
         r.Job.jr_report)
  in
  (* Ack before the pool sees the job: a worker may start it the
     instant [submit] returns, and its telemetry must follow the ack in
     the outbox. The rare shutdown rejection arrives as a subsequent
     error frame for the same (tenant, id). *)
  Outbox.send_json out
    (Protocol.ack ~tenant ~id ~queue_depth:(Pool.depth t.pool tenant + 1));
  match Pool.submit t.pool ~tenant work with
  | Ok _seq -> ()
  | Error e -> Outbox.send_json out (Protocol.error ~tenant ~id e)

let handle_request t out = function
  | Protocol.Submit { tenant; id; job } -> handle_submit t out ~tenant ~id job
  | Protocol.Status ->
      let s = Pool.stats t.pool in
      Outbox.send_json out
        (Telemetry.status_json t.telemetry ~now:(Unix.gettimeofday ())
           ~pool_pending:s.Pool.s_pending ~pool_inflight:s.Pool.s_inflight
           ~pool_workers:s.Pool.s_workers)
  | Protocol.Metrics ->
      Outbox.send_json out
        (Protocol.metrics_frame (Telemetry.prometheus t.telemetry))
  | Protocol.Spans { tenant; id } -> (
      match Telemetry.spans_of t.telemetry ~tenant ~id with
      | Some doc -> Outbox.send_json out (Protocol.spans_frame ~tenant ~id doc)
      | None ->
          Outbox.send_json out
            (Protocol.error ~tenant ~id "no spans recorded for this job"))
  | Protocol.Bundle { tenant; id } -> (
      match Telemetry.bundle_of t.telemetry ~tenant ~id with
      | Some doc -> Outbox.send_json out (Protocol.bundle_frame ~tenant ~id doc)
      | None ->
          Outbox.send_json out
            (Protocol.error ~tenant ~id "no flight bundle for this job"))
  | Protocol.Ping -> Outbox.send_json out Protocol.pong
  | Protocol.Shutdown ->
      Outbox.send_json out (Protocol.bye ~draining:(Pool.pending t.pool));
      request_stop t

(* Read request lines until EOF or shutdown. Unknown or malformed
   requests produce an error frame and the connection stays open —
   one bad line must not kill a session streaming other jobs. *)
let connection_loop t ~conn_id fd =
  Telemetry.note_connection t.telemetry;
  let out = Outbox.create ~max:t.cfg.max_outbox fd in
  let ic = Unix.in_channel_of_descr fd in
  let peer_eof = ref false in
  (try
     let rec loop () =
       match In_channel.input_line ic with
       | None -> peer_eof := true
       | Some line ->
           let line = String.trim line in
           if line <> "" then begin
             match
               Protocol.request_of_line
                 ~max_program_bytes:t.cfg.max_program_bytes line
             with
             | Error e -> Outbox.send_json out (Protocol.error e)
             | Ok req -> handle_request t out req
           end;
           if not (stopping t) then loop ()
     in
     loop ()
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> peer_eof := true);
  if !peer_eof && not (stopping t) then begin
    (* The peer vanished mid-stream: its queued jobs keep running (the
       pool owes no refunds and the metrics still count), but their
       frames now go nowhere — kill the outbox so workers never block
       publishing to a dead connection. *)
    Outbox.kill out;
    Outbox.close out
  end
  else begin
    (* orderly shutdown: let the drain finish so every accepted job's
       result frame is flushed to this client before the close *)
    Pool.wait_drained t.pool;
    Outbox.close out
  end;
  Mutex.lock t.conns_mu;
  t.conn_fds <- List.remove_assoc conn_id t.conn_fds;
  Mutex.unlock t.conns_mu;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* A peer that vanishes mid-write must surface as [EPIPE] (the outbox
   flips to discard mode), not as a process-killing SIGPIPE. *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then
    try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> ()

let create cfg =
  ignore_sigpipe ();
  {
    cfg;
    pool = Pool.create ~workers:cfg.workers ~max_pending:cfg.max_pending ();
    telemetry =
      Telemetry.create ~started:(Unix.gettimeofday ()) ();
    listen_fd = listen_on cfg.address;
    stop = false;
    stop_mu = Mutex.create ();
    conns = [];
    conn_fds = [];
    conn_ids = 0;
    conns_mu = Mutex.create ();
  }

(* Run the accept loop until a shutdown request. Drains the pool,
   unblocks and joins every connection thread before returning. *)
let serve t =
  (try
     while not (stopping t) do
       let fd, _peer = Unix.accept t.listen_fd in
       Mutex.lock t.conns_mu;
       let conn_id = t.conn_ids in
       t.conn_ids <- conn_id + 1;
       t.conn_fds <- (conn_id, fd) :: t.conn_fds;
       let th = Thread.create (fun () -> connection_loop t ~conn_id fd) () in
       t.conns <- th :: t.conns;
       Mutex.unlock t.conns_mu
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* drain: every accepted job completes before we return *)
  Pool.shutdown t.pool;
  (* idle connections are still blocked reading; force them to EOF *)
  Mutex.lock t.conns_mu;
  let fds = List.map snd t.conn_fds in
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.conns_mu;
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    fds;
  List.iter Thread.join conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.cfg.address with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let start cfg =
  let t = create cfg in
  (t, Thread.create (fun () -> serve t) ())
