(** The recovery-service wire protocol: newline-delimited JSON both
    ways. Requests are one object per line ([op] member selects the
    verb); responses are frames tagged by their [type] member. A
    submitted job's frames always arrive ack -> telemetry* -> result,
    and a tenant's results arrive in submission order.

    Job payloads mirror the CLI's vocabulary — a run job with default
    knobs yields the same report bytes as [conair_cli report], because
    both call {!Conair.run_report_of}. See [docs/SERVER.md]. *)

module Json = Conair_obs.Json

(** What a job executes: a bugbench registry benchmark, or inline Mir
    source text (size-guarded by [max_program_bytes]). *)
type target =
  | Bench of { app : string; variant : string; oracle : bool }
  | Source of string

(** Execution knobs, defaulting exactly as the CLI's flags do: fast
    engine, fuel 8M, round-robin (or [Random seed]), retry budget 1M. *)
type exec = {
  engine : string;
  fuel : int;
  seed : int option;
  max_retries : int;
}

val default_exec : exec

type spec =
  | Run of { target : target; mode : string; exec : exec }
  | Harden of { target : target; mode : string }
  | Detect of { target : target; original : bool; exec : exec }
  | Minimize of { log : string list; max_tests : int; detect : bool }
  | Fuzz of { target : target; runs : int; base_seed : int; exec : exec }
  | Fix of {
      target : target;
      max_candidates : int;
      sweep_seeds : int;
      search_seeds : int;
      exec : exec;
    }

val kind_name : spec -> string

type request =
  | Submit of { tenant : string; id : string; job : spec }
  | Status
  | Metrics
  | Spans of { tenant : string; id : string }
  | Bundle of { tenant : string; id : string }
  | Ping
  | Shutdown

(** {2 Response frames} *)

val ack : tenant:string -> id:string -> queue_depth:int -> Json.t
val telemetry : tenant:string -> id:string -> Json.t -> Json.t

val result :
  tenant:string ->
  id:string ->
  status:string ->
  exit:int ->
  elapsed_ms:float ->
  Json.t ->
  Json.t

val error : ?tenant:string -> ?id:string -> string -> Json.t
val metrics_frame : string -> Json.t
val spans_frame : tenant:string -> id:string -> Json.t -> Json.t

val bundle_frame : tenant:string -> id:string -> Json.t -> Json.t
(** The flight-recorder diagnostic bundle of a failed run job, as
    retained by the daemon's telemetry under the per-tenant cap. *)

val pong : Json.t
val bye : draining:int -> Json.t

(** {2 Codecs} *)

val spec_of_json : max_program_bytes:int -> Json.t -> (spec, string) result

val request_of_json :
  max_program_bytes:int -> Json.t -> (request, string) result

val request_of_line :
  max_program_bytes:int -> string -> (request, string) result
(** Parse one request line. [Error] on malformed JSON, unknown ops or
    kinds, bad members, or an inline payload over [max_program_bytes]. *)

val request_json : request -> Json.t
val request_to_line : request -> string
