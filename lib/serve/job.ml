(* Job execution: one function per job kind, each deliberately the
   same code path as the corresponding CLI subcommand so that a served
   report is byte-identical to the CLI's output for the same inputs:

   - run      = [Conair.run_report_of]   (conair_cli run / report)
   - harden   = [Conair.harden_exn]      (conair_cli harden)
   - detect   = [Conair.run_detected] / [detect_hardened]  (conair_cli races)
   - minimize = [Conair.minimize]        (conair_cli minimize)
   - fuzz     = hardened seed sweep folding fuzz-style run records into
                an [Obs.Aggregate] (conair_cli aggregate over a fuzz log)
   - fix      = [Conair.Fix.Pipeline.run]  (conair_cli fix)

   Exit codes mirror the CLI too (0 ok, 2 failed run, 3 findings), so
   a client can script against the daemon exactly as against the CLI. *)

module Json = Conair_obs.Json
module Jsonl = Conair_obs.Jsonl
module Span = Conair_obs.Span
module Aggregate = Conair_obs.Aggregate
module Outcome = Conair_runtime.Outcome
module Stats = Conair_runtime.Stats
module Machine = Conair_runtime.Machine
module Engine = Conair_runtime.Engine
module Sched = Conair_runtime.Sched
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry

type outcome = {
  jr_status : string;  (** "ok" | "error" *)
  jr_exit : int;  (** the CLI-equivalent exit code *)
  jr_report : Json.t;  (** the job's structured result document *)
  jr_record : Json.t option;
      (** fuzz-style run record for cross-job aggregation *)
  jr_spans : Json.t option;  (** Chrome trace doc (run jobs) *)
  jr_bundle : Json.t option;
      (** flight-recorder diagnostic bundle (failed run jobs) *)
}

let failed ?(exit = 1) msg =
  {
    jr_status = "error";
    jr_exit = exit;
    jr_report =
      Json.Obj
        [ ("type", Json.String "job_error"); ("message", Json.String msg) ];
    jr_record = None;
    jr_spans = None;
    jr_bundle = None;
  }

let engine_of_name name =
  List.find (fun e -> Engine.name e = name) Engine.all

let config_of_exec (e : Protocol.exec) =
  {
    Machine.default_config with
    fuel = e.fuel;
    max_retries = e.max_retries;
    policy =
      (match e.seed with
      | None -> Sched.Round_robin
      | Some s -> Sched.Random s);
  }

(* Resolve a job target to (label, variant name, instance). Inline
   source programs get the trivial instance (no fix sites, accept-all),
   labelled "source" in telemetry. *)
let resolve (target : Protocol.target) =
  match target with
  | Protocol.Bench { app; variant; oracle } -> (
      match Registry.find app with
      | None ->
          Error
            (Printf.sprintf "unknown application %S; try: %s" app
               (String.concat ", " Registry.names))
      | Some spec ->
          let v = if variant = "clean" then Spec.Clean else Spec.Buggy in
          let oracle = oracle || spec.Spec.info.needs_oracle in
          Ok (app, variant, spec.Spec.make ~variant:v ~oracle))
  | Protocol.Source src -> (
      match Conair.Ir.Parse.program src with
      | Error e ->
          Error (Format.asprintf "bad program: %a" Conair.Ir.Parse.pp_error e)
      | Ok p -> Ok ("source", "buggy", Spec.instance p))

let mode_of ~(inst : Spec.instance) = function
  | "none" -> Ok None
  | "survival" -> Ok (Some Conair.Survival)
  | "fix" ->
      if inst.Spec.fix_site_iids = [] then
        Error "fix mode needs a benchmark with known failing sites"
      else Ok (Some (Conair.Fix inst.Spec.fix_site_iids))
  | m -> Error (Printf.sprintf "unknown mode %S" m)

(* The same per-run record the fuzzer streams — [Aggregate]'s input
   vocabulary — so the daemon's per-tenant aggregates and a fuzz log
   fold identically. *)
let outcome_tag (o : Outcome.t) =
  match o with
  | Outcome.Success -> "success"
  | Outcome.Failed _ -> "failed"
  | Outcome.Hang _ -> "hang"
  | Outcome.Fuel_exhausted _ -> "fuel-exhausted"

let site_rollup (s : Stats.t) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Stats.episode) ->
      let eps, rts, stp =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl e.ep_site_id)
      in
      Hashtbl.replace tbl e.ep_site_id
        (eps + 1, rts + e.ep_retries, stp + Stats.episode_duration e))
    (Stats.episodes_chronological s);
  Hashtbl.fold (fun id v acc -> (id, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let run_record ~case ~seed (r : Conair.run) =
  let episodes = Stats.episodes_chronological r.stats in
  Json.Obj
    [
      ("type", Json.String "run");
      ("case", Json.String case);
      ("seed", Json.Int seed);
      ("outcome", Json.String (outcome_tag r.outcome));
      ("steps", Json.Int r.stats.steps);
      ("instrs", Json.Int r.stats.instrs);
      ("rollbacks", Json.Int r.stats.rollbacks);
      ("episodes", Json.Int (List.length episodes));
      ("retries", Json.Int (Stats.total_retries r.stats));
      ("max_episode_steps", Json.Int (Stats.max_recovery_time r.stats));
      ( "sites",
        Json.List
          (List.map
             (fun (id, (eps, rts, stp)) ->
               Json.Obj
                 [
                   ("site", Json.Int id);
                   ("episodes", Json.Int eps);
                   ("retries", Json.Int rts);
                   ("steps", Json.Int stp);
                 ])
             (site_rollup r.stats)) );
    ]

(* --- the job kinds ------------------------------------------------- *)

let exec_run ~telemetry ~target ~mode ~(exec : Protocol.exec) =
  match resolve target with
  | Error e -> failed e
  | Ok (app, variant, inst) -> (
      match mode_of ~inst mode with
      | Error e -> failed e
      | Ok mode ->
          let config = config_of_exec exec in
          let engine = engine_of_name exec.engine in
          (* identical to the CLI: the meta line never names the engine *)
          let meta_info =
            Jsonl.run_meta ~variant ?seed:exec.seed app
          in
          let writer =
            {
              Jsonl.write =
                (fun line ->
                  match Json.of_string line with
                  | Ok j -> telemetry j
                  | Error _ -> ());
            }
          in
          let rr =
            Conair.run_report_of ~config ~engine ~meta_info
              ~trace_writer:writer ~mode inst.Spec.program
          in
          let seed = Option.value ~default:0 exec.seed in
          (* A failed run additionally yields a flight-recorder bundle: a
             deterministic capture re-run under the job's exact config and
             engine, the same post-mortem the CLI dumps under [--flight].
             The bundle is retained by telemetry for the [bundle] fetch
             op, so a client can pull the post-mortem after the fact. *)
          let bundle =
            if Outcome.is_success rr.Conair.run.outcome then None
            else
              let mode_name =
                match mode with
                | None -> "none"
                | Some Conair.Survival -> "survival"
                | Some (Conair.Fix _) -> "fix"
              in
              let ident =
                Conair.Replay.Log.ident ~variant ~mode:mode_name app
              in
              let _, b =
                match mode with
                | None ->
                    Conair.run_flight ~config ~engine ~reason:"failure"
                      ~ident inst.Spec.program
                | Some m ->
                    let h = Conair.harden_exn inst.Spec.program m in
                    Conair.run_flight ~config ~engine
                      ~meta:(Machine.meta_of_harden h.Conair.hardened)
                      ~reason:"failure" ~ident
                      h.Conair.hardened.Conair_transform.Harden.program
              in
              Some (Conair.Obs.Flight.to_json b)
          in
          {
            jr_status = "ok";
            jr_exit =
              (if Outcome.is_success rr.Conair.run.outcome then 0 else 2);
            jr_report = rr.Conair.report;
            jr_record = Some (run_record ~case:app ~seed rr.Conair.run);
            jr_spans =
              Some (Span.to_chrome ~events:rr.Conair.events rr.Conair.spans);
            jr_bundle = bundle;
          })

let exec_harden ~target ~mode =
  match resolve target with
  | Error e -> failed e
  | Ok (app, _variant, inst) -> (
      match mode_of ~inst mode with
      | Error e -> failed e
      | Ok None -> failed "harden job needs mode survival or fix"
      | Ok (Some mode) -> (
          match Conair.harden inst.Spec.program mode with
          | Error e -> failed e
          | Ok h ->
              {
                jr_status = "ok";
                jr_exit = 0;
                jr_report =
                  Json.Obj
                    [
                      ("type", Json.String "harden_report");
                      ("app", Json.String app);
                      ( "sites",
                        Json.Int (List.length h.Conair.plan.site_plans) );
                      ( "program",
                        Json.String
                          (Format.asprintf "%a@." Conair.Ir.Program.pp
                             h.Conair.hardened.program) );
                    ];
                jr_record = None;
                jr_spans = None;
                jr_bundle = None;
              }))

let exec_detect ~target ~original ~(exec : Protocol.exec) =
  match resolve target with
  | Error e -> failed e
  | Ok (_app, _variant, inst) ->
      let config = config_of_exec exec in
      let engine = engine_of_name exec.engine in
      let _r, report =
        if original then
          Conair.run_detected ~config ~engine inst.Spec.program
        else
          Conair.detect_hardened ~config ~engine
            (Conair.harden_exn inst.Spec.program Conair.Survival)
      in
      let actual =
        List.filter
          (fun c -> c.Conair.Race.Report.cy_actual)
          report.Conair.Race.Report.cycles
      in
      {
        jr_status = "ok";
        jr_exit =
          (* exit 3 on findings, as the races subcommand does *)
          (if report.Conair.Race.Report.races <> [] || actual <> [] then 3
           else 0);
        jr_report = Conair.Race.Report.to_json report;
        jr_record = None;
        jr_spans = None;
        jr_bundle = None;
      }

let exec_minimize ~log ~max_tests ~detect =
  match Conair.Replay.Log.of_lines log with
  | Error e -> failed (Printf.sprintf "bad schedule log: %s" e)
  | Ok slog -> (
      match Conair.minimize ~max_tests ~detect slog with
      | Error e -> failed e
      | Ok m ->
          {
            jr_status = "ok";
            jr_exit = 0;
            jr_report = Conair.Replay.Minimize.to_json m;
            jr_record = None;
            jr_spans = None;
            jr_bundle = None;
          })

let exec_fuzz ~telemetry ~target ~runs ~base_seed ~(exec : Protocol.exec) =
  match resolve target with
  | Error e -> failed e
  | Ok (app, _variant, inst) -> (
      match Conair.harden inst.Spec.program Conair.Survival with
      | Error e -> failed e
      | Ok h ->
          let engine = engine_of_name exec.engine in
          let records = ref [] in
          for i = 0 to runs - 1 do
            let seed = base_seed + i in
            let config =
              config_of_exec { exec with Protocol.seed = Some seed }
            in
            let r = Conair.execute_hardened ~config ~engine h in
            let rec_j = run_record ~case:app ~seed r in
            records := rec_j :: !records;
            telemetry rec_j
          done;
          let records = List.rev !records in
          {
            jr_status = "ok";
            jr_exit = 0;
            jr_report = Aggregate.to_json (Aggregate.of_records records);
            jr_record =
              (* the sweep's last record stands in for the job *)
              (match List.rev records with last :: _ -> Some last | [] -> None);
            jr_spans = None;
            jr_bundle = None;
          })

let exec_fix ~target ~max_candidates ~sweep_seeds ~search_seeds
    ~(exec : Protocol.exec) =
  match resolve target with
  | Error e -> failed e
  | Ok (app, variant, inst) ->
      let module Pipeline = Conair.Fix.Pipeline in
      let base = config_of_exec exec in
      let options =
        {
          Pipeline.default_options with
          Pipeline.engine = engine_of_name exec.engine;
          fuel = base.Machine.fuel;
          max_retries = base.Machine.max_retries;
          max_candidates;
          sweep_seeds;
          search_seeds;
        }
      in
      let report =
        Pipeline.run ~options ~accept:inst.Spec.accept ~app ~variant
          inst.Spec.program
      in
      {
        jr_status = "ok";
        jr_exit =
          (* exit 2 with no surviving candidate, as the fix subcommand *)
          (if report.Pipeline.fx_survivors > 0 then 0 else 2);
        jr_report = Pipeline.to_json report;
        jr_record = None;
        jr_spans = None;
        jr_bundle = None;
      }

(* Execute [spec], streaming any per-job telemetry records through
   [telemetry] as they are produced. Never raises: failures come back
   as an ["error"] outcome. *)
let execute ?(telemetry = fun (_ : Json.t) -> ()) (spec : Protocol.spec) :
    outcome =
  try
    match spec with
    | Protocol.Run { target; mode; exec } ->
        exec_run ~telemetry ~target ~mode ~exec
    | Protocol.Harden { target; mode } -> exec_harden ~target ~mode
    | Protocol.Detect { target; original; exec } ->
        exec_detect ~target ~original ~exec
    | Protocol.Minimize { log; max_tests; detect } ->
        exec_minimize ~log ~max_tests ~detect
    | Protocol.Fuzz { target; runs; base_seed; exec } ->
        exec_fuzz ~telemetry ~target ~runs ~base_seed ~exec
    | Protocol.Fix { target; max_candidates; sweep_seeds; search_seeds; exec }
      ->
        exec_fix ~target ~max_candidates ~sweep_seeds ~search_seeds ~exec
  with
  | Invalid_argument e -> failed e
  | Failure e -> failed e
