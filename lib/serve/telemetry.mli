(** The daemon's shared observability state: a mutex-guarded
    {!Conair_obs.Metrics} registry (Prometheus-ready), per-tenant
    aggregates over fuzz-style run records, bounded per-job span
    history, and the status document. Every entry point is
    thread-safe. *)

module Json = Conair_obs.Json

type t

val create : ?max_history:int -> started:float -> unit -> t
(** [max_history] (default 256) bounds per-tenant latency samples and
    run records, and the span-document history. [started] is the
    daemon's Unix start time, for the uptime figure. *)

(** {2 Event entry points} *)

val note_connection : t -> unit
val note_submitted : t -> tenant:string -> kind:string -> unit
val note_started : t -> unit
val note_telemetry : t -> tenant:string -> unit

val note_finished :
  t ->
  tenant:string ->
  id:string ->
  kind:string ->
  status:string ->
  exit:int ->
  elapsed:float ->
  ?record:Json.t ->
  ?spans:Json.t ->
  ?bundle:Json.t ->
  unit ->
  unit
(** One job finished. [record] (a fuzz-style run record) feeds the
    tenant's {!Conair_obs.Aggregate}; [spans] (a Chrome trace document)
    is retained for the spans endpoint, evicting oldest-first past
    [max_history]; [bundle] (a flight-recorder diagnostic bundle from a
    failed run job) is retained for the bundle endpoint under a
    per-tenant cap of [max_history] — one tenant's failure storm never
    evicts another tenant's post-mortems. *)

(** {2 Read endpoints} *)

val prometheus : t -> string
(** The registry in Prometheus text exposition format. *)

val metrics_json : t -> Json.t
val spans_of : t -> tenant:string -> id:string -> Json.t option

val bundle_of : t -> tenant:string -> id:string -> Json.t option
(** The flight-recorder bundle retained for a failed run job, if it is
    still within the tenant's retention window. *)

val status_json :
  t ->
  now:float ->
  pool_pending:int ->
  pool_inflight:int ->
  pool_workers:int ->
  Json.t
(** The ["serve_status"] document: uptime, pool stats, and per-tenant
    submitted/completed/failed counts, latency percentiles
    (nearest-rank, over the bounded sample window) and the aggregate
    over retained run records. *)
