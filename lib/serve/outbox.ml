(* A per-connection outbox: a bounded queue of response lines drained
   by a dedicated writer thread.

   Worker threads publishing telemetry never touch the socket — they
   enqueue and move on. When the queue is full the producer blocks
   (backpressure toward the pool), and when the peer disconnects the
   writer marks the outbox dead and every queued or future line is
   discarded, so a vanished client can never wedge a worker. *)

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  space : Condition.t;
  q : string Queue.t;
  max : int;
  fd : Unix.file_descr;
  mutable closing : bool;  (** flush what is queued, then stop *)
  mutable dead : bool;  (** peer gone; discard everything *)
  mutable writer : Thread.t option;
}

let write_all fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      if w = 0 then raise End_of_file;
      go (off + w)
    end
  in
  go 0

let rec writer_loop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.q && not t.closing && not t.dead do
    Condition.wait t.nonempty t.mu
  done;
  if t.dead || (t.closing && Queue.is_empty t.q) then begin
    Queue.clear t.q;
    Condition.broadcast t.space;
    Mutex.unlock t.mu
  end
  else begin
    let line = Queue.pop t.q in
    Condition.signal t.space;
    Mutex.unlock t.mu;
    (try write_all t.fd line
     with _ ->
       Mutex.lock t.mu;
       t.dead <- true;
       Queue.clear t.q;
       Condition.broadcast t.space;
       Mutex.unlock t.mu);
    writer_loop t
  end

let create ?(max = 1024) fd =
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      space = Condition.create ();
      q = Queue.create ();
      max = Stdlib.max 1 max;
      fd;
      closing = false;
      dead = false;
      writer = None;
    }
  in
  t.writer <- Some (Thread.create writer_loop t);
  t

(* Enqueue one response line (newline appended by the writer). Blocks
   on a full queue; silently drops once the peer is gone or the outbox
   is closing. *)
let send t line =
  Mutex.lock t.mu;
  while Queue.length t.q >= t.max && not t.dead && not t.closing do
    Condition.wait t.space t.mu
  done;
  if not t.dead && not t.closing then begin
    Queue.push line t.q;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mu

let send_json t j = send t (Conair_obs.Json.to_string j)

let is_dead t =
  Mutex.lock t.mu;
  let d = t.dead in
  Mutex.unlock t.mu;
  d

(* Mark the peer gone: discard queued lines and unblock producers. *)
let kill t =
  Mutex.lock t.mu;
  t.dead <- true;
  Queue.clear t.q;
  Condition.broadcast t.space;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu

(* Flush queued lines, stop the writer thread and join it. Does not
   close the file descriptor — the connection owner does that. *)
let close t =
  Mutex.lock t.mu;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.space;
  let w = t.writer in
  t.writer <- None;
  Mutex.unlock t.mu;
  match w with Some th -> Thread.join th | None -> ()
