(* The worker pool: a fixed set of systhreads draining a bounded,
   per-tenant FIFO job store.

   Invariants, enforced by the single mutex:

   - Per-tenant order: at most one job of a tenant runs at a time, and
     jobs of a tenant start (hence finish) in submission order.
   - Bounded: at most [max_pending] jobs are queued-or-running; a
     further [submit] blocks the caller (backpressure) instead of
     growing without bound, and wakes as soon as a job completes.
   - Drain on shutdown: [shutdown] refuses new work, lets every
     accepted job run to completion, then joins the workers. *)

type job = { j_tenant : string; j_seq : int; j_work : unit -> unit }

type t = {
  mu : Mutex.t;
  work_ready : Condition.t;  (** a tenant became runnable, or stopping *)
  slot_free : Condition.t;  (** a job completed; pending shrank *)
  queues : (string, job Queue.t) Hashtbl.t;
  ready : string Queue.t;
      (** tenants whose head job is runnable: non-empty queue, not
          currently executing *)
  running : (string, unit) Hashtbl.t;
  seqs : (string, int) Hashtbl.t;  (** next per-tenant sequence number *)
  max_pending : int;
  mutable pending : int;  (** queued + running jobs *)
  mutable inflight : int;  (** running jobs *)
  mutable stopping : bool;
  mutable workers : Thread.t list;
}

let tenant_queue t tenant =
  match Hashtbl.find_opt t.queues tenant with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues tenant q;
      q

let rec worker_loop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.ready && not (t.stopping && t.pending = 0) do
    Condition.wait t.work_ready t.mu
  done;
  if Queue.is_empty t.ready then begin
    (* stopping and fully drained *)
    Mutex.unlock t.mu;
    Condition.broadcast t.work_ready
  end
  else begin
    let tenant = Queue.pop t.ready in
    let q = tenant_queue t tenant in
    let job = Queue.pop q in
    Hashtbl.replace t.running tenant ();
    t.inflight <- t.inflight + 1;
    Mutex.unlock t.mu;
    (try job.j_work () with _ -> ());
    Mutex.lock t.mu;
    Hashtbl.remove t.running tenant;
    t.inflight <- t.inflight - 1;
    t.pending <- t.pending - 1;
    if not (Queue.is_empty q) then begin
      Queue.push tenant t.ready;
      Condition.signal t.work_ready
    end;
    Condition.signal t.slot_free;
    if t.stopping && t.pending = 0 then Condition.broadcast t.work_ready;
    Mutex.unlock t.mu;
    worker_loop t
  end

let create ?(workers = 4) ?(max_pending = 256) () =
  let t =
    {
      mu = Mutex.create ();
      work_ready = Condition.create ();
      slot_free = Condition.create ();
      queues = Hashtbl.create 8;
      ready = Queue.create ();
      running = Hashtbl.create 8;
      seqs = Hashtbl.create 8;
      max_pending = max 1 max_pending;
      pending = 0;
      inflight = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (max 1 workers) (fun _ -> Thread.create worker_loop t);
  t

(* Submit [work] for [tenant]. Blocks while the pool is full; returns
   the job's per-tenant sequence number, or [Error] once the pool is
   shutting down. *)
let submit t ~tenant work =
  Mutex.lock t.mu;
  while t.pending >= t.max_pending && not t.stopping do
    Condition.wait t.slot_free t.mu
  done;
  if t.stopping then begin
    Mutex.unlock t.mu;
    Error "pool is shutting down"
  end
  else begin
    let seq = Option.value ~default:0 (Hashtbl.find_opt t.seqs tenant) in
    Hashtbl.replace t.seqs tenant (seq + 1);
    let q = tenant_queue t tenant in
    let was_empty = Queue.is_empty q in
    Queue.push { j_tenant = tenant; j_seq = seq; j_work = work } q;
    t.pending <- t.pending + 1;
    if was_empty && not (Hashtbl.mem t.running tenant) then begin
      Queue.push tenant t.ready;
      Condition.signal t.work_ready
    end;
    Mutex.unlock t.mu;
    Ok seq
  end

(* Jobs queued for [tenant] (excluding one currently running). *)
let depth t tenant =
  Mutex.lock t.mu;
  let d =
    match Hashtbl.find_opt t.queues tenant with
    | Some q -> Queue.length q
    | None -> 0
  in
  Mutex.unlock t.mu;
  d

type stats = { s_pending : int; s_inflight : int; s_workers : int }

let stats t =
  Mutex.lock t.mu;
  let s =
    {
      s_pending = t.pending;
      s_inflight = t.inflight;
      s_workers = List.length t.workers;
    }
  in
  Mutex.unlock t.mu;
  s

let pending t = (stats t).s_pending

(* Block until every accepted job has completed. [slot_free] fires on
   each completion, so this needs no polling. Meant for the shutdown
   path; with submissions still arriving it may never return. *)
let wait_drained t =
  Mutex.lock t.mu;
  while t.pending > 0 do
    Condition.wait t.slot_free t.mu
  done;
  Mutex.unlock t.mu

(* Refuse new submissions, run every accepted job to completion, join
   the workers. Idempotent. *)
let shutdown t =
  Mutex.lock t.mu;
  let ws = t.workers in
  t.workers <- [];
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Condition.broadcast t.slot_free;
  Mutex.unlock t.mu;
  List.iter Thread.join ws
