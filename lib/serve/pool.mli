(** The daemon's worker pool: a fixed set of systhreads draining a
    bounded job store with strict per-tenant FIFO order.

    Guarantees: at most one job per tenant executes at a time, and a
    tenant's jobs start in submission order — so results (published by
    the job itself) are per-tenant ordered. At most [max_pending] jobs
    are queued-or-running; a further {!submit} blocks (backpressure)
    until a slot frees. {!shutdown} refuses new work, runs every
    accepted job to completion, and joins the workers. *)

type t

val create : ?workers:int -> ?max_pending:int -> unit -> t
(** Defaults: 4 workers, 256 pending. Both floored at 1. *)

val submit : t -> tenant:string -> (unit -> unit) -> (int, string) result
(** Enqueue a job; blocks while the pool is full. Returns the job's
    per-tenant sequence number, or [Error] once shutdown has begun.
    Exceptions escaping the job are swallowed by the worker. *)

val depth : t -> string -> int
(** Jobs queued for a tenant (excluding one currently running). *)

type stats = { s_pending : int; s_inflight : int; s_workers : int }

val stats : t -> stats
val pending : t -> int

val wait_drained : t -> unit
(** Block until every accepted job completed. Intended for the
    shutdown path; with submissions still flowing it may not return. *)

val shutdown : t -> unit
(** Refuse new submissions, drain, join the workers. Idempotent, but
    only the first caller joins (and thus waits for the drain). *)
