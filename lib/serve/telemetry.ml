(* The daemon's shared observability state: one mutex-guarded
   [Obs.Metrics] registry (Prometheus-ready), per-tenant aggregates
   over the fuzz-style run records each job emits, bounded per-job
   span history for the Chrome-trace endpoint, and the status
   document.

   Everything here is cross-thread shared state — workers, connection
   readers and the accept loop all report in — so every entry point
   takes the mutex. The registry itself is the same [Obs.Metrics] the
   CLI uses; only the locking wrapper is new. *)

module Json = Conair_obs.Json
module Metrics = Conair_obs.Metrics
module Aggregate = Conair_obs.Aggregate

type tenant_state = {
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;  (** completed with status <> "ok" or exit <> 0 *)
  mutable latencies_ms : float list;  (** most recent first, bounded *)
  mutable records : Json.t list;  (** fuzz-style run records, bounded *)
  mutable bundles : int;  (** flight bundles produced (lifetime count) *)
}

type t = {
  mu : Mutex.t;
  metrics : Metrics.t;
  started : float;  (** Unix time of [create] *)
  tenants : (string, tenant_state) Hashtbl.t;
  spans : (string * string, Json.t) Hashtbl.t;
      (** (tenant, job id) -> Chrome trace document *)
  mutable span_order : (string * string) list;  (** eviction order *)
  bundles : (string * string, Json.t) Hashtbl.t;
      (** (tenant, job id) -> flight-recorder diagnostic bundle *)
  mutable bundle_order : (string * string) list;
      (** per-tenant FIFO eviction order: retention is capped per tenant
          (at [max_history]), so one tenant's failure storm cannot evict
          another tenant's post-mortems *)
  max_history : int;
  inflight : Metrics.gauge;
  connections : Metrics.counter;
  telemetry_lines : Metrics.counter;
  bundles_total : Metrics.counter;
}

let latency_buckets =
  [ 0.001; 0.005; 0.025; 0.1; 0.25; 0.5; 1.0; 2.5; 10.0 ]

let create ?(max_history = 256) ~started () =
  let metrics = Metrics.create () in
  {
    mu = Mutex.create ();
    metrics;
    started;
    tenants = Hashtbl.create 8;
    spans = Hashtbl.create 16;
    span_order = [];
    bundles = Hashtbl.create 16;
    bundle_order = [];
    max_history = max 1 max_history;
    inflight =
      Metrics.gauge ~help:"Jobs currently executing" metrics
        "conair_serve_inflight_jobs";
    connections =
      Metrics.counter ~help:"Client connections accepted" metrics
        "conair_serve_connections_total";
    telemetry_lines =
      Metrics.counter ~help:"Telemetry lines streamed to clients" metrics
        "conair_serve_telemetry_lines_total";
    bundles_total =
      Metrics.counter ~help:"Flight-recorder bundles captured for failed jobs"
        metrics "conair_serve_bundles_total";
  }

let tenant_state t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> s
  | None ->
      let s =
        {
          submitted = 0;
          completed = 0;
          failed = 0;
          latencies_ms = [];
          records = [];
          bundles = 0;
        }
      in
      Hashtbl.replace t.tenants tenant s;
      s

let truncate n xs = List.filteri (fun i _ -> i < n) xs

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* --- event entry points ------------------------------------------- *)

let note_connection t = locked t (fun () -> Metrics.inc t.connections)

let note_submitted t ~tenant ~kind =
  locked t (fun () ->
      (tenant_state t tenant).submitted <- (tenant_state t tenant).submitted + 1;
      Metrics.inc
        (Metrics.counter ~help:"Jobs submitted"
           ~labels:[ ("tenant", tenant); ("kind", kind) ]
           t.metrics "conair_serve_jobs_submitted_total");
      Metrics.set
        (Metrics.gauge ~help:"Jobs queued per tenant"
           ~labels:[ ("tenant", tenant) ]
           t.metrics "conair_serve_queue_depth")
        (float_of_int
           ((tenant_state t tenant).submitted
           - (tenant_state t tenant).completed)))

let note_started t = locked t (fun () ->
    Metrics.set t.inflight (Metrics.gauge_value t.inflight +. 1.))

let note_telemetry t ~tenant =
  locked t (fun () ->
      Metrics.inc t.telemetry_lines;
      Metrics.inc
        (Metrics.counter ~help:"Telemetry lines per tenant"
           ~labels:[ ("tenant", tenant) ]
           t.metrics "conair_serve_tenant_telemetry_lines_total"))

(* One job finished. [record] is the fuzz-style run record (when the
   job kind produces one) feeding the per-tenant [Aggregate]; [spans]
   the Chrome document for the spans endpoint; [bundle] the
   flight-recorder post-mortem of a failed run job, retained for the
   bundle endpoint under a per-tenant cap. *)
let note_finished t ~tenant ~id ~kind ~status ~exit ~elapsed ?record ?spans
    ?bundle () =
  locked t (fun () ->
      let s = tenant_state t tenant in
      s.completed <- s.completed + 1;
      if status <> "ok" || exit <> 0 then s.failed <- s.failed + 1;
      s.latencies_ms <- truncate t.max_history ((elapsed *. 1000.) :: s.latencies_ms);
      (match record with
      | Some r -> s.records <- truncate t.max_history (r :: s.records)
      | None -> ());
      (match spans with
      | Some doc ->
          let key = (tenant, id) in
          if not (Hashtbl.mem t.spans key) then begin
            t.span_order <- t.span_order @ [ key ];
            if List.length t.span_order > t.max_history then begin
              match t.span_order with
              | oldest :: rest ->
                  Hashtbl.remove t.spans oldest;
                  t.span_order <- rest
              | [] -> ()
            end
          end;
          Hashtbl.replace t.spans key doc
      | None -> ());
      (match bundle with
      | Some doc ->
          let key = (tenant, id) in
          if not (Hashtbl.mem t.bundles key) then begin
            s.bundles <- s.bundles + 1;
            Metrics.inc t.bundles_total;
            Metrics.inc
              (Metrics.counter ~help:"Flight bundles per tenant"
                 ~labels:[ ("tenant", tenant) ]
                 t.metrics "conair_serve_tenant_bundles_total");
            t.bundle_order <- t.bundle_order @ [ key ];
            (* per-tenant retention cap: evict this tenant's oldest *)
            let mine =
              List.filter (fun (tn, _) -> tn = tenant) t.bundle_order
            in
            if List.length mine > t.max_history then begin
              match mine with
              | oldest :: _ ->
                  Hashtbl.remove t.bundles oldest;
                  t.bundle_order <-
                    List.filter (fun k -> k <> oldest) t.bundle_order
              | [] -> ()
            end;
            Metrics.set
              (Metrics.gauge ~help:"Flight bundles retained per tenant"
                 ~labels:[ ("tenant", tenant) ]
                 t.metrics "conair_serve_bundles_retained")
              (float_of_int
                 (List.length
                    (List.filter (fun (tn, _) -> tn = tenant) t.bundle_order)))
          end;
          Hashtbl.replace t.bundles key doc
      | None -> ());
      Metrics.set t.inflight
        (Float.max 0. (Metrics.gauge_value t.inflight -. 1.));
      Metrics.inc
        (Metrics.counter ~help:"Jobs completed"
           ~labels:
             [ ("tenant", tenant); ("kind", kind); ("status", status) ]
           t.metrics "conair_serve_jobs_completed_total");
      Metrics.observe
        (Metrics.histogram ~help:"Job wall-clock seconds"
           ~labels:[ ("tenant", tenant) ]
           ~buckets:latency_buckets t.metrics "conair_serve_job_seconds")
        elapsed;
      Metrics.set
        (Metrics.gauge ~help:"Jobs queued per tenant"
           ~labels:[ ("tenant", tenant) ]
           t.metrics "conair_serve_queue_depth")
        (float_of_int (s.submitted - s.completed)))

(* --- read endpoints ------------------------------------------------ *)

let prometheus t = locked t (fun () -> Metrics.to_prometheus t.metrics)
let metrics_json t = locked t (fun () -> Metrics.to_json t.metrics)

let spans_of t ~tenant ~id =
  locked t (fun () -> Hashtbl.find_opt t.spans (tenant, id))

let bundle_of t ~tenant ~id =
  locked t (fun () -> Hashtbl.find_opt t.bundles (tenant, id))

let percentile_ms xs p =
  (* reuse the hardened nearest-rank percentile over whole milliseconds *)
  Aggregate.percentile (List.map (fun f -> int_of_float (Float.round f)) xs) p

let status_json t ~now ~pool_pending ~pool_inflight ~pool_workers =
  locked t (fun () ->
      let tenants =
        Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.tenants []
        |> List.sort compare
      in
      Json.Obj
        [
          ("type", Json.String "serve_status");
          ("uptime_sec", Json.Float (Float.max 0. (now -. t.started)));
          ( "pool",
            Json.Obj
              [
                ("workers", Json.Int pool_workers);
                ("pending", Json.Int pool_pending);
                ("inflight", Json.Int pool_inflight);
              ] );
          ( "tenants",
            Json.List
              (List.map
                 (fun (name, s) ->
                   Json.Obj
                     [
                       ("tenant", Json.String name);
                       ("submitted", Json.Int s.submitted);
                       ("completed", Json.Int s.completed);
                       ("failed", Json.Int s.failed);
                       ("queued", Json.Int (s.submitted - s.completed));
                       ("bundles", Json.Int s.bundles);
                       ( "latency_ms",
                         Json.Obj
                           [
                             ( "p50",
                               Json.Int (percentile_ms s.latencies_ms 50.) );
                             ( "p95",
                               Json.Int (percentile_ms s.latencies_ms 95.) );
                             ( "max",
                               Json.Int (percentile_ms s.latencies_ms 100.) );
                           ] );
                       ( "aggregate",
                         Aggregate.to_json (Aggregate.of_records s.records) );
                     ])
                 tenants) );
        ])
