(* The wire protocol of the recovery service: newline-delimited JSON in
   both directions. A client sends one request object per line; the
   server answers with one or more response frames per line. Frames for
   a submitted job always arrive in the order ack -> telemetry* ->
   result, and per tenant results arrive in submission order (the
   pool's per-tenant FIFO guarantee).

   The payload vocabulary deliberately mirrors the CLI: a run job with
   the default knobs produces the same structured report as

     conair_cli report APP --seed N

   byte for byte, because both sides call [Conair.run_report_of]. *)

module Json = Conair_obs.Json

(* ------------------------------------------------------------------ *)
(* Job specifications                                                  *)
(* ------------------------------------------------------------------ *)

(* What to execute: a bugbench registry benchmark, or an inline Mir
   program shipped as source text. *)
type target =
  | Bench of { app : string; variant : string; oracle : bool }
  | Source of string

(* Execution knobs, defaulting exactly as the CLI's flags do. *)
type exec = {
  engine : string;  (** "ref" | "fast" | "block" *)
  fuel : int;
  seed : int option;  (** random-scheduler seed; [None] = round-robin *)
  max_retries : int;
}

let default_exec =
  { engine = "fast"; fuel = 8_000_000; seed = None; max_retries = 1_000_000 }

type spec =
  | Run of { target : target; mode : string; exec : exec }
      (** observed execution; [mode] is "none" | "survival" | "fix" *)
  | Harden of { target : target; mode : string }
      (** static pipeline only; returns the transformed program text *)
  | Detect of { target : target; original : bool; exec : exec }
      (** race/deadlock detection, hardened unless [original] *)
  | Minimize of { log : string list; max_tests : int; detect : bool }
      (** ddmin over an embedded schedule log (JSONL lines) *)
  | Fuzz of { target : target; runs : int; base_seed : int; exec : exec }
      (** seed sweep of hardened runs; returns the aggregate *)
  | Fix of {
      target : target;
      max_candidates : int;
      sweep_seeds : int;
      search_seeds : int;
      exec : exec;
    }
      (** the whole fix pipeline: detect, record+minimize a failing
          schedule, synthesize candidate patches, validate through the
          three gates, rank survivors; returns the fix report *)

let kind_name = function
  | Run _ -> "run"
  | Harden _ -> "harden"
  | Detect _ -> "detect"
  | Minimize _ -> "minimize"
  | Fuzz _ -> "fuzz"
  | Fix _ -> "fix"

(* ------------------------------------------------------------------ *)
(* Requests and responses                                              *)
(* ------------------------------------------------------------------ *)

type request =
  | Submit of { tenant : string; id : string; job : spec }
  | Status
  | Metrics  (** Prometheus text exposition of the shared registry *)
  | Spans of { tenant : string; id : string }
      (** Chrome trace-event export of a finished run job *)
  | Bundle of { tenant : string; id : string }
      (** flight-recorder diagnostic bundle of a failed run job *)
  | Ping
  | Shutdown  (** drain queued and in-flight jobs, then exit *)

(* Frame constructors. Responses are plain [Json.t]; the writer side
   encodes them compactly, one per line. *)

let str s = Json.String s

let ack ~tenant ~id ~queue_depth =
  Json.Obj
    [
      ("type", str "ack");
      ("tenant", str tenant);
      ("id", str id);
      ("queue_depth", Json.Int queue_depth);
    ]

let telemetry ~tenant ~id line =
  Json.Obj
    [
      ("type", str "telemetry");
      ("tenant", str tenant);
      ("id", str id);
      ("line", line);
    ]

let result ~tenant ~id ~status ~exit ~elapsed_ms report =
  Json.Obj
    [
      ("type", str "result");
      ("tenant", str tenant);
      ("id", str id);
      ("status", str status);
      ("exit", Json.Int exit);
      ("elapsed_ms", Json.Float elapsed_ms);
      ("report", report);
    ]

let error ?tenant ?id msg =
  Json.Obj
    (("type", str "error")
     :: (match tenant with Some t -> [ ("tenant", str t) ] | None -> [])
    @ (match id with Some i -> [ ("id", str i) ] | None -> [])
    @ [ ("message", str msg) ])

let metrics_frame body =
  Json.Obj
    [ ("type", str "metrics"); ("format", str "prometheus"); ("body", str body) ]

let spans_frame ~tenant ~id chrome =
  Json.Obj
    [
      ("type", str "spans");
      ("tenant", str tenant);
      ("id", str id);
      ("chrome", chrome);
    ]

let bundle_frame ~tenant ~id doc =
  Json.Obj
    [
      ("type", str "bundle");
      ("tenant", str tenant);
      ("id", str id);
      ("bundle", doc);
    ]

let pong = Json.Obj [ ("type", str "pong") ]

let bye ~draining =
  Json.Obj [ ("type", str "bye"); ("draining", Json.Int draining) ]

(* ------------------------------------------------------------------ *)
(* Request decoding                                                    *)
(* ------------------------------------------------------------------ *)

let mem k j = Json.member k j

let string_mem ?default k j =
  match (mem k j, default) with
  | Some (Json.String s), _ -> Ok s
  | None, Some d -> Ok d
  | _, _ -> Error (Printf.sprintf "expected string member %S" k)

let int_mem ~default k j =
  match mem k j with
  | Some (Json.Int n) -> Ok n
  | None -> Ok default
  | _ -> Error (Printf.sprintf "expected int member %S" k)

let bool_mem ~default k j =
  match mem k j with
  | Some (Json.Bool b) -> Ok b
  | None -> Ok default
  | _ -> Error (Printf.sprintf "expected bool member %S" k)

let ( let* ) = Result.bind

let exec_of_json j =
  let* engine = string_mem ~default:default_exec.engine "engine" j in
  let* fuel = int_mem ~default:default_exec.fuel "fuel" j in
  let* max_retries =
    int_mem ~default:default_exec.max_retries "max_retries" j
  in
  let* seed =
    match mem "seed" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int n) -> Ok (Some n)
    | Some _ -> Error "expected int member \"seed\""
  in
  if not (List.exists (fun e -> Conair.Runtime.Engine.name e = engine)
            Conair.Runtime.Engine.all)
  then Error (Printf.sprintf "unknown engine %S" engine)
  else Ok { engine; fuel; seed; max_retries }

(* [max_program_bytes] bounds inline payloads (program text, embedded
   schedule logs) so one client cannot balloon the server's memory. *)
let target_of_json ~max_program_bytes j =
  match mem "program" j with
  | Some (Json.String src) ->
      if String.length src > max_program_bytes then
        Error
          (Printf.sprintf "program too large: %d bytes (limit %d)"
             (String.length src) max_program_bytes)
      else Ok (Source src)
  | Some _ -> Error "expected string member \"program\""
  | None ->
      let* app = string_mem "app" j in
      let* variant = string_mem ~default:"buggy" "variant" j in
      let* oracle = bool_mem ~default:false "oracle" j in
      if variant <> "buggy" && variant <> "clean" then
        Error (Printf.sprintf "unknown variant %S" variant)
      else Ok (Bench { app; variant; oracle })

let mode_of_json j =
  let* mode = string_mem ~default:"survival" "mode" j in
  match mode with
  | "none" | "survival" | "fix" -> Ok mode
  | m -> Error (Printf.sprintf "unknown mode %S" m)

let spec_of_json ~max_program_bytes j =
  let* kind = string_mem "kind" j in
  match kind with
  | "run" ->
      let* target = target_of_json ~max_program_bytes j in
      let* mode = mode_of_json j in
      let* exec = exec_of_json j in
      Ok (Run { target; mode; exec })
  | "harden" ->
      let* target = target_of_json ~max_program_bytes j in
      let* mode = mode_of_json j in
      if mode = "none" then Error "harden job needs mode survival or fix"
      else Ok (Harden { target; mode })
  | "detect" ->
      let* target = target_of_json ~max_program_bytes j in
      let* original = bool_mem ~default:false "original" j in
      let* exec = exec_of_json j in
      Ok (Detect { target; original; exec })
  | "minimize" ->
      let* log =
        match mem "log" j with
        | Some (Json.List lines) ->
            List.fold_left
              (fun acc l ->
                let* acc = acc in
                match l with
                | Json.String s -> Ok (s :: acc)
                | _ -> Error "expected \"log\" to be a list of strings")
              (Ok []) lines
            |> Result.map List.rev
        | _ -> Error "minimize job needs a \"log\" line list"
      in
      let bytes =
        List.fold_left (fun n l -> n + String.length l + 1) 0 log
      in
      if bytes > max_program_bytes then
        Error
          (Printf.sprintf "log too large: %d bytes (limit %d)" bytes
             max_program_bytes)
      else
        let* max_tests = int_mem ~default:2000 "max_tests" j in
        let* detect = bool_mem ~default:true "detect" j in
        Ok (Minimize { log; max_tests; detect })
  | "fuzz" ->
      let* target = target_of_json ~max_program_bytes j in
      let* runs = int_mem ~default:5 "runs" j in
      let* base_seed = int_mem ~default:0 "base_seed" j in
      let* exec = exec_of_json j in
      if runs < 1 || runs > 10_000 then
        Error (Printf.sprintf "runs out of range: %d" runs)
      else Ok (Fuzz { target; runs; base_seed; exec })
  | "fix" ->
      let* target = target_of_json ~max_program_bytes j in
      let* max_candidates = int_mem ~default:8 "max_candidates" j in
      let* sweep_seeds = int_mem ~default:100 "sweep_seeds" j in
      let* search_seeds = int_mem ~default:50 "search_seeds" j in
      let* exec = exec_of_json j in
      if max_candidates < 1 || max_candidates > 64 then
        Error (Printf.sprintf "max_candidates out of range: %d" max_candidates)
      else if sweep_seeds < 1 || sweep_seeds > 10_000 then
        Error (Printf.sprintf "sweep_seeds out of range: %d" sweep_seeds)
      else if search_seeds < 1 || search_seeds > 10_000 then
        Error (Printf.sprintf "search_seeds out of range: %d" search_seeds)
      else Ok (Fix { target; max_candidates; sweep_seeds; search_seeds; exec })
  | k -> Error (Printf.sprintf "unknown job kind %S" k)

let request_of_json ~max_program_bytes j =
  let* op = string_mem "op" j in
  match op with
  | "submit" ->
      let* tenant = string_mem "tenant" j in
      let* id = string_mem "id" j in
      if tenant = "" then Error "tenant must be non-empty"
      else if id = "" then Error "id must be non-empty"
      else
        let* job = spec_of_json ~max_program_bytes j in
        Ok (Submit { tenant; id; job })
  | "status" -> Ok Status
  | "metrics" -> Ok Metrics
  | "spans" ->
      let* tenant = string_mem "tenant" j in
      let* id = string_mem "id" j in
      Ok (Spans { tenant; id })
  | "bundle" ->
      let* tenant = string_mem "tenant" j in
      let* id = string_mem "id" j in
      Ok (Bundle { tenant; id })
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

let request_of_line ~max_program_bytes line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "bad json: %s" e)
  | Ok j -> request_of_json ~max_program_bytes j

(* ------------------------------------------------------------------ *)
(* Request encoding (the client side)                                  *)
(* ------------------------------------------------------------------ *)

let exec_json e =
  [
    ("engine", str e.engine);
    ("fuel", Json.Int e.fuel);
    ("max_retries", Json.Int e.max_retries);
  ]
  @ match e.seed with None -> [] | Some s -> [ ("seed", Json.Int s) ]

let target_json = function
  | Source src -> [ ("program", str src) ]
  | Bench { app; variant; oracle } ->
      [ ("app", str app); ("variant", str variant); ("oracle", Json.Bool oracle) ]

let spec_json = function
  | Run { target; mode; exec } ->
      (("kind", str "run") :: target_json target)
      @ [ ("mode", str mode) ]
      @ exec_json exec
  | Harden { target; mode } ->
      (("kind", str "harden") :: target_json target) @ [ ("mode", str mode) ]
  | Detect { target; original; exec } ->
      (("kind", str "detect") :: target_json target)
      @ [ ("original", Json.Bool original) ]
      @ exec_json exec
  | Minimize { log; max_tests; detect } ->
      [
        ("kind", str "minimize");
        ("log", Json.List (List.map str log));
        ("max_tests", Json.Int max_tests);
        ("detect", Json.Bool detect);
      ]
  | Fuzz { target; runs; base_seed; exec } ->
      (("kind", str "fuzz") :: target_json target)
      @ [ ("runs", Json.Int runs); ("base_seed", Json.Int base_seed) ]
      @ exec_json exec
  | Fix { target; max_candidates; sweep_seeds; search_seeds; exec } ->
      (("kind", str "fix") :: target_json target)
      @ [
          ("max_candidates", Json.Int max_candidates);
          ("sweep_seeds", Json.Int sweep_seeds);
          ("search_seeds", Json.Int search_seeds);
        ]
      @ exec_json exec

let request_json = function
  | Submit { tenant; id; job } ->
      Json.Obj
        (("op", str "submit")
         :: ("tenant", str tenant)
         :: ("id", str id)
         :: spec_json job)
  | Status -> Json.Obj [ ("op", str "status") ]
  | Metrics -> Json.Obj [ ("op", str "metrics") ]
  | Spans { tenant; id } ->
      Json.Obj [ ("op", str "spans"); ("tenant", str tenant); ("id", str id) ]
  | Bundle { tenant; id } ->
      Json.Obj [ ("op", str "bundle"); ("tenant", str tenant); ("id", str id) ]
  | Ping -> Json.Obj [ ("op", str "ping") ]
  | Shutdown -> Json.Obj [ ("op", str "shutdown") ]

let request_to_line r = Json.to_string (request_json r)
