(* Lock-order graph with cycle detection: the deadlock lens.

   Nodes are lock names; an edge a→b is witnessed when a thread holding
   [a] acquires — or merely *requests* — [b]. Request edges are what
   make hanging runs diagnosable: in a run that deadlocks, the final
   acquisitions never happen, only blocked requests do.

   Two grades of finding:

   - "actual": a cycle closed among *simultaneously pending* requests —
     threads that were all blocked on each other at one instant. Checked
     online at every request, because in a hardened run timed locks give
     up, the pending set drains, and a post-hoc check would miss the
     deadlock that recovery just papered over. A request of a lock the
     thread already holds is the one-node case of the same cycle.

   - "potential": a cycle in the full witnessed graph that never closed
     simultaneously — inconsistent lock ordering that some other
     schedule could deadlock.

   A thread's pending request is cleared by its next event of any kind
   (the acquisition finally succeeding, or a timed lock giving up and
   doing something else). Cycles are canonicalized (minimum lock first)
   and deduplicated across both grades. *)

type pending = {
  pr_lock : string;
  pr_held : string list;
  pr_iid : int;
  pr_step : int;
}

type t = {
  edges : (string * string, Report.edge) Hashtbl.t;  (* first witness *)
  pend : (int, pending) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;  (* canonical cycle keys *)
  mutable actual : Report.cycle list;  (* newest first *)
}

let create () =
  {
    edges = Hashtbl.create 16;
    pend = Hashtbl.create 8;
    seen = Hashtbl.create 8;
    actual = [];
  }

let clear t tid = Hashtbl.remove t.pend tid

let add_edge tbl ~from ~to_ ~tid ~iid ~step ~req =
  if not (Hashtbl.mem tbl (from, to_)) then
    Hashtbl.replace tbl (from, to_)
      {
        Report.e_from = from;
        e_to = to_;
        e_tid = tid;
        e_iid = iid;
        e_step = step;
        e_req = req;
      }

(* Every simple cycle of [edges], each reported once in canonical form:
   node list starting at its minimum lock. Deterministic — nodes and
   successors visited in sorted order. The graphs here are tiny (a
   handful of locks), so naive enumeration is fine. *)
let simple_cycles edges =
  let adj = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (a, b) _ ->
      let cur = match Hashtbl.find_opt adj a with Some l -> l | None -> [] in
      Hashtbl.replace adj a (b :: cur))
    edges;
  let nodes =
    Hashtbl.fold (fun (a, b) _ acc -> a :: b :: acc) edges []
    |> List.sort_uniq compare
  in
  let succs n =
    match Hashtbl.find_opt adj n with
    | Some l -> List.sort_uniq compare l
    | None -> []
  in
  let found = ref [] in
  List.iter
    (fun s ->
      (* only cycles whose minimum node is [s]: intermediates must be
         strictly greater, so each cycle appears exactly once. *)
      let rec dfs path node =
        List.iter
          (fun nxt ->
            if nxt = s then found := List.rev path :: !found
            else if nxt > s && not (List.mem nxt path) then
              dfs (nxt :: path) nxt)
          (succs node)
      in
      dfs [ s ] s)
    nodes;
  List.rev !found

let cycle_edges edges nodes =
  let n = List.length nodes in
  List.mapi
    (fun i a ->
      let b = List.nth nodes ((i + 1) mod n) in
      Hashtbl.find edges (a, b))
    nodes

let key nodes = String.concat "->" nodes

let record_actual t pend_edges nodes =
  let k = key nodes in
  if not (Hashtbl.mem t.seen k) then begin
    Hashtbl.replace t.seen k ();
    t.actual <-
      {
        Report.cy_locks = nodes;
        cy_actual = true;
        cy_edges = cycle_edges pend_edges nodes;
      }
      :: t.actual
  end

let on_acquire t ~tid ~iid ~step ~lock ~locks =
  clear t tid;
  (* [locks] includes the lock just acquired. *)
  List.iter
    (fun h ->
      if h <> lock then add_edge t.edges ~from:h ~to_:lock ~tid ~iid ~step ~req:false)
    locks

let on_request t ~tid ~iid ~step ~lock ~locks =
  List.iter
    (fun h -> add_edge t.edges ~from:h ~to_:lock ~tid ~iid ~step ~req:true)
    locks;
  Hashtbl.replace t.pend tid { pr_lock = lock; pr_held = locks; pr_iid = iid; pr_step = step };
  (* Online: does the waits-for graph of the currently pending requests
     close a cycle? (Held→wanted edges; a self-request is a self-loop.) *)
  let pend_edges = Hashtbl.create 8 in
  Hashtbl.iter
    (fun ptid p ->
      List.iter
        (fun h ->
          add_edge pend_edges ~from:h ~to_:p.pr_lock ~tid:ptid ~iid:p.pr_iid
            ~step:p.pr_step ~req:true)
        p.pr_held)
    t.pend;
  List.iter (record_actual t pend_edges) (simple_cycles pend_edges)

let finalize t =
  let actual = List.rev t.actual in
  let potential =
    simple_cycles t.edges
    |> List.filter (fun nodes -> not (Hashtbl.mem t.seen (key nodes)))
    |> List.sort (fun a b -> compare (key a) (key b))
    |> List.map (fun nodes ->
           {
             Report.cy_locks = nodes;
             cy_actual = false;
             cy_edges = cycle_edges t.edges nodes;
           })
  in
  actual @ potential
