(* The online detector: one probe, three lenses.

   [probe] adapts the engine's raw event stream into [Report.access]
   records and feeds whichever analyses are enabled; [report] finalizes.
   Everything is driven off the probe callbacks, so installing the
   detector on either engine — or replaying the same callbacks by hand
   in a test — produces identical reports. *)

open Conair_runtime

type options = { hb : bool; lockset : bool; deadlock : bool }

let all = { hb = true; lockset = true; deadlock = true }

type t = {
  options : options;
  hb : Hb.t;
  ls : Lockset.t;
  lo : Lockorder.t;
}

let create ?(options = all) () =
  { options; hb = Hb.create (); ls = Lockset.create (); lo = Lockorder.create () }

let probe t : Race_probe.probe =
  let o = t.options in
  {
    Race_probe.rp_access =
      (fun ~step ~tid ~iid ~stack ~block ~kind ~addr ~locks ->
        let acc =
          {
            Report.ac_step = step;
            ac_tid = tid;
            ac_iid = iid;
            ac_stack = stack;
            ac_block = block;
            ac_kind = kind;
            ac_addr = addr;
            ac_locks = locks;
          }
        in
        if o.hb then Hb.on_access t.hb acc;
        if o.lockset then Lockset.on_access t.ls acc;
        if o.deadlock then Lockorder.clear t.lo tid);
    rp_acquire =
      (fun ~step ~tid ~iid ~lock ~locks ->
        if o.hb then Hb.on_acquire t.hb ~tid ~lock;
        if o.deadlock then Lockorder.on_acquire t.lo ~tid ~iid ~step ~lock ~locks);
    rp_request =
      (fun ~step ~tid ~iid ~lock ~locks ->
        if o.deadlock then Lockorder.on_request t.lo ~tid ~iid ~step ~lock ~locks);
    rp_release =
      (fun ~step:_ ~tid ~lock ->
        if o.hb then Hb.on_release t.hb ~tid ~lock;
        if o.deadlock then Lockorder.clear t.lo tid);
    rp_spawn =
      (fun ~step:_ ~parent ~child ->
        if o.hb then Hb.on_spawn t.hb ~parent ~child;
        if o.deadlock then Lockorder.clear t.lo parent);
    rp_join =
      (fun ~step:_ ~tid ~joined ->
        if o.hb then Hb.on_join t.hb ~tid ~joined;
        if o.deadlock then Lockorder.clear t.lo tid);
    rp_wake =
      (fun ~step:_ ~waker ~woken ->
        if o.hb then Hb.on_wake t.hb ~waker ~woken;
        if o.deadlock then Lockorder.clear t.lo waker);
  }

let report t =
  {
    Report.races = (if t.options.hb then Hb.races t.hb else []);
    warnings = (if t.options.lockset then Lockset.warnings t.ls else []);
    cycles = (if t.options.deadlock then Lockorder.finalize t.lo else []);
  }
