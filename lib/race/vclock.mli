(** Vector clocks and FastTrack epochs for the happens-before detector.

    Clocks are growable flat arrays indexed by thread id (ids are dense
    in this runtime); absent entries read as 0. Epochs are the FastTrack
    scalar "last event of thread [t] at clock [c]" — comparing an epoch
    against a clock is O(1). *)

type t

val create : unit -> t
(** The zero clock. *)

val get : t -> int -> int
val set : t -> int -> int -> unit

val incr : t -> int -> unit
(** Bump one component — done after every event whose clock is copied
    somewhere (writes, releases, spawns, notifies), so later events of
    the same thread are not falsely ordered by the copy. *)

val copy : t -> t

val join : into:t -> t -> unit
(** Pointwise max, in place. *)

val leq : t -> t -> bool
(** Pointwise [<=]: the happens-before order on clocks. *)

val max_tid : t -> int
(** Highest thread id with a non-zero entry; [-1] on the zero clock. *)

type epoch = { e_tid : int; e_clock : int }

val bottom : epoch
(** [0@0] — reads as ordered before everything. *)

val epoch_of : t -> int -> epoch
(** [epoch_of c t] is [c(t)@t]: the current event of thread [t]. *)

val epoch_leq : epoch -> t -> bool
(** [epoch_leq e c] — the event named by [e] happens-before the point
    named by [c]; [e.e_clock <= c(e.e_tid)]. *)
