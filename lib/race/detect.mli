(** The online race/deadlock detector: one probe, three lenses.

    Install [probe t] on a machine with [Machine.set_race] (or
    [Ref_machine.set_race]), run, then [report t]. Reports are
    deterministic in the schedule, so they are byte-identical across
    runs with the same policy and seed and across the two engines. *)

open Conair_runtime

type options = {
  hb : bool;  (** happens-before races ([Hb]) *)
  lockset : bool;  (** Eraser lockset warnings ([Lockset]) *)
  deadlock : bool;  (** lock-order cycles ([Lockorder]) *)
}

val all : options

type t

val create : ?options:options -> unit -> t
(** Default: every lens on. *)

val probe : t -> Race_probe.probe
val report : t -> Report.t
