(* Happens-before race detection: FastTrack epochs over SHB order.

   The order tracked is *schedulable* happens-before (SHB): program
   order, release→acquire on the same lock, spawn→first-event,
   last-event→join, notify→wake — plus reads-from edges (a read joins
   the clock its value's writer had at the write). Race checks fire only
   at writes, against the last write and the readers since; reads never
   report, they only order. This is Mathur/Kini/Viswanathan's fix to
   plain HB's unsoundness after the first race: every race SHB reports
   is schedulable, and a write that is read-ordered behind its observer
   is quiet — which is what makes the bugbench clean variants quiet.

   FastTrack compression: last write is an epoch; readers are an epoch
   until two concurrent reads force a full vector clock. Per-component
   increments happen after every event whose clock gets copied out
   (write → LW, release → L_m, spawn → child, notify → woken), so the
   copy never falsely orders the copier's later events. *)

open Conair_runtime

type read_state =
  | R_none
  | R_epoch of Vclock.epoch * Report.access
  | R_vc of Vclock.t * (int, Report.access) Hashtbl.t

type var_state = {
  mutable vs_w : Vclock.epoch;  (* last write *)
  mutable vs_w_acc : Report.access option;
  mutable vs_lw : Vclock.t option;  (* writer's clock at last write *)
  mutable vs_r : read_state;  (* reads since last ordered write *)
}

type t = {
  clocks : (int, Vclock.t) Hashtbl.t;
  vars : (Race_probe.addr, var_state) Hashtbl.t;
  locks_vc : (string, Vclock.t) Hashtbl.t;
  cells_of_block : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;  (* race dedup: addr + iid pair *)
  mutable races : Report.race list;  (* newest first *)
}

let create () =
  {
    clocks = Hashtbl.create 16;
    vars = Hashtbl.create 64;
    locks_vc = Hashtbl.create 16;
    cells_of_block = Hashtbl.create 16;
    seen = Hashtbl.create 16;
    races = [];
  }

let clock_of t tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some c -> c
  | None ->
      let c = Vclock.create () in
      Vclock.set c tid 1;
      Hashtbl.replace t.clocks tid c;
      c

let var_of t addr =
  match Hashtbl.find_opt t.vars addr with
  | Some v -> v
  | None ->
      let v =
        { vs_w = Vclock.bottom; vs_w_acc = None; vs_lw = None; vs_r = R_none }
      in
      Hashtbl.replace t.vars addr v;
      (match addr with
      | Race_probe.A_cell (b, off) ->
          let cells =
            match Hashtbl.find_opt t.cells_of_block b with
            | Some s -> s
            | None ->
                let s = Hashtbl.create 8 in
                Hashtbl.replace t.cells_of_block b s;
                s
          in
          Hashtbl.replace cells off ()
      | _ -> ());
      v

let report t addr (prev : Report.access) (curr : Report.access) =
  let key =
    Printf.sprintf "%s/%d/%d" (Report.addr_string addr) prev.Report.ac_iid
      curr.Report.ac_iid
  in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.races <- { Report.rc_addr = addr; rc_prev = prev; rc_curr = curr } :: t.races
  end

let on_read t (acc : Report.access) =
  let c = clock_of t acc.Report.ac_tid in
  let v = var_of t acc.Report.ac_addr in
  (* reads-from: order this read after the write it observes. *)
  (match v.vs_lw with None -> () | Some lw -> Vclock.join ~into:c lw);
  let tid = acc.Report.ac_tid in
  let e = Vclock.epoch_of c tid in
  match v.vs_r with
  | R_none -> v.vs_r <- R_epoch (e, acc)
  | R_epoch (old, _) when old.Vclock.e_tid = tid || Vclock.epoch_leq old c ->
      v.vs_r <- R_epoch (e, acc)
  | R_epoch (old, old_acc) ->
      (* two concurrent readers: promote to a full clock. *)
      let vc = Vclock.create () in
      Vclock.set vc old.Vclock.e_tid old.Vclock.e_clock;
      Vclock.set vc tid e.Vclock.e_clock;
      let accs = Hashtbl.create 4 in
      Hashtbl.replace accs old.Vclock.e_tid old_acc;
      Hashtbl.replace accs tid acc;
      v.vs_r <- R_vc (vc, accs)
  | R_vc (vc, accs) ->
      Vclock.set vc tid e.Vclock.e_clock;
      Hashtbl.replace accs tid acc

(* Check [v]'s write and read history against clock [c]; report races
   with [acc]. Does not update [v]. *)
let check_var t v (acc : Report.access) c =
  let addr = acc.Report.ac_addr in
  (match v.vs_w_acc with
  | Some prev when not (Vclock.epoch_leq v.vs_w c) -> report t addr prev acc
  | _ -> ());
  match v.vs_r with
  | R_none -> ()
  | R_epoch (e, prev) -> if not (Vclock.epoch_leq e c) then report t addr prev acc
  | R_vc (vc, accs) ->
      for tid = 0 to Vclock.max_tid vc do
        if Vclock.get vc tid > Vclock.get c tid then
          match Hashtbl.find_opt accs tid with
          | Some prev -> report t addr prev acc
          | None -> ()
      done

let on_write t (acc : Report.access) =
  let tid = acc.Report.ac_tid in
  let c = clock_of t tid in
  (* Freeing a block conflicts with every unordered access to any of its
     cells: check (but do not update) each recorded cell. *)
  (match acc.Report.ac_addr with
  | Race_probe.A_block b -> (
      match Hashtbl.find_opt t.cells_of_block b with
      | None -> ()
      | Some cells ->
          let offs = Hashtbl.fold (fun off () l -> off :: l) cells [] in
          List.iter
            (fun off ->
              match
                Hashtbl.find_opt t.vars (Race_probe.A_cell (b, off))
              with
              | Some v ->
                  check_var t v
                    { acc with Report.ac_addr = Race_probe.A_cell (b, off) }
                    c
              | None -> ())
            (List.sort compare offs))
  | _ -> ());
  let v = var_of t acc.Report.ac_addr in
  check_var t v acc c;
  v.vs_w <- Vclock.epoch_of c tid;
  v.vs_w_acc <- Some acc;
  v.vs_lw <- Some (Vclock.copy c);
  v.vs_r <- R_none;
  Vclock.incr c tid

let on_access t (acc : Report.access) =
  match acc.Report.ac_kind with
  | Race_probe.Read -> on_read t acc
  | Race_probe.Write -> on_write t acc

let on_acquire t ~tid ~lock =
  match Hashtbl.find_opt t.locks_vc lock with
  | None -> ()
  | Some lm -> Vclock.join ~into:(clock_of t tid) lm

let on_release t ~tid ~lock =
  let c = clock_of t tid in
  Hashtbl.replace t.locks_vc lock (Vclock.copy c);
  Vclock.incr c tid

let on_spawn t ~parent ~child =
  let cp = clock_of t parent in
  let cc = Vclock.copy cp in
  Vclock.set cc child (Vclock.get cc child + 1);
  Hashtbl.replace t.clocks child cc;
  Vclock.incr cp parent

let on_join t ~tid ~joined =
  Vclock.join ~into:(clock_of t tid) (clock_of t joined)

let on_wake t ~waker ~woken =
  let cw = clock_of t waker in
  Vclock.join ~into:(clock_of t woken) cw;
  Vclock.incr cw waker

let races t = List.rev t.races
