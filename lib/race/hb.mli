(** FastTrack-style race detection over schedulable happens-before.

    Tracks program order, release→acquire, spawn/join, notify→wake, and
    reads-from edges; checks for conflicts only at writes (against the
    last write and the readers since). Every reported race is
    schedulable; runs where every write is read-observed before the next
    conflicting write stay quiet. *)

type t

val create : unit -> t

val on_access : t -> Report.access -> unit
(** Reads order (join the last writer's clock) and record; writes check
    and then become the last write. A whole-block address (a free)
    additionally checks every recorded cell of the block. *)

val on_acquire : t -> tid:int -> lock:string -> unit
val on_release : t -> tid:int -> lock:string -> unit
val on_spawn : t -> parent:int -> child:int -> unit
val on_join : t -> tid:int -> joined:int -> unit
val on_wake : t -> waker:int -> woken:int -> unit

val races : t -> Report.race list
(** In detection order; duplicates (same address and instruction pair)
    reported once. *)
