(** Lock-order graph with cycle detection.

    Edges are witnessed held-lock → acquired-or-requested-lock pairs.
    "Actual" cycles close among simultaneously pending (blocked)
    requests — checked online at each request, so deadlocks that a
    hardened run's timed locks later dissolve are still caught.
    "Potential" cycles exist only in the accumulated graph: inconsistent
    lock ordering some other schedule could deadlock. *)

type t

val create : unit -> t

val clear : t -> int -> unit
(** The thread did something else: its pending request (if any) is over. *)

val on_acquire :
  t -> tid:int -> iid:int -> step:int -> lock:string -> locks:string list -> unit
(** [locks] is the held set {e including} [lock]. *)

val on_request :
  t -> tid:int -> iid:int -> step:int -> lock:string -> locks:string list -> unit
(** A blocked request; [locks] is the held set (without [lock]). *)

val finalize : t -> Report.cycle list
(** Actual cycles in discovery order, then potential ones sorted by
    their canonical lock list; no cycle appears in both. *)
