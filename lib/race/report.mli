(** Race and deadlock findings.

    Deterministic given the probe event stream: same schedule, byte-
    identical report — on either engine. *)

open Conair_runtime
module Json = Conair_obs.Json

type access = {
  ac_step : int;
  ac_tid : int;
  ac_iid : int;
  ac_stack : string list;  (** function names, innermost first *)
  ac_block : string;
  ac_kind : Race_probe.kind;
  ac_addr : Race_probe.addr;
  ac_locks : string list;  (** held lockset, sorted *)
}

type race = {
  rc_addr : Race_probe.addr;
  rc_prev : access;  (** earlier conflicting access *)
  rc_curr : access;  (** the write at which the race was detected *)
}

type warning = {
  w_addr : Race_probe.addr;
  w_prev : access option;
  w_curr : access;  (** access at which the candidate lockset emptied *)
}

type edge = {
  e_from : string;
  e_to : string;
  e_tid : int;
  e_iid : int;
  e_step : int;
  e_req : bool;  (** witnessed as a blocked request, not an acquisition *)
}

type cycle = {
  cy_locks : string list;  (** canonical: minimum lock first *)
  cy_actual : bool;
      (** closed among simultaneously-blocked requests (a deadlock that
          happened), vs. merely present in the lock-order graph *)
  cy_edges : edge list;
}

type t = { races : race list; warnings : warning list; cycles : cycle list }

val empty : t
val addr_string : Race_probe.addr -> string
val race_global : race -> string option
(** The global variable name, when the race is on one. *)

val kind_string : Race_probe.kind -> Race_probe.kind -> string

val cycle_key : cycle -> string
(** Canonical identity of a lock-order cycle: its (already canonical)
    lock list joined with ["->"]. Actual and potential cycles share a
    key deliberately — demoting an actual deadlock to a potential one
    does not remove the inversion. *)

val new_cycles : baseline:t -> t -> cycle list
(** The cycles of the second report whose lock sets the [baseline] never
    saw — the fix synthesizer's deadlock-freedom gate: a candidate may
    keep the cycles the buggy program already had, but must not mint new
    ones. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
