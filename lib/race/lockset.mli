(** Eraser-style lockset discipline checking.

    Per-location state machine (Virgin → Exclusive → Shared /
    Shared_modified) with a candidate lockset refined by intersection;
    warns — once per location — when a written-shared location's
    candidate set empties. Heuristic: warnings are locking-discipline
    hints, not confirmed races (that is [Hb]'s job). *)

type t

val create : unit -> t
val on_access : t -> Report.access -> unit

val warnings : t -> Report.warning list
(** In detection order, at most one per location. *)
