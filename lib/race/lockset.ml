(* Eraser-style lockset discipline checking: the second lens.

   Per location, the classic state machine — Virgin, Exclusive(first
   thread), Shared (read-shared), Shared_modified — with a candidate
   lockset initialized when the location first goes cross-thread and
   refined by intersection with the held set at every later access. An
   empty candidate set in Shared_modified means no single lock
   consistently protects the location: a discipline violation, warned
   once per location.

   This lens is heuristic where happens-before is precise: it flags
   locations that *happen* to be consistently locked as fine even if a
   schedule could race them, and flags lock-free but ordered idioms
   (spawn hand-off and the like are forgiven via the Exclusive state,
   but e.g. flag-based hand-off is not). It complements [Hb]: warnings
   are hints, not races. *)

type state = Virgin | Exclusive of int | Shared | Shared_modified

type entry = {
  mutable st : state;
  mutable cand : string list option;  (* sorted; None until cross-thread *)
  mutable last : Report.access option;
  mutable warned : bool;
}

type t = {
  vars : (Conair_runtime.Race_probe.addr, entry) Hashtbl.t;
  mutable warnings : Report.warning list;  (* newest first *)
}

let create () = { vars = Hashtbl.create 64; warnings = [] }

let inter a b = List.filter (fun l -> List.mem l b) a

let entry_of t addr =
  match Hashtbl.find_opt t.vars addr with
  | Some e -> e
  | None ->
      let e = { st = Virgin; cand = None; last = None; warned = false } in
      Hashtbl.replace t.vars addr e;
      e

let warn t e (acc : Report.access) =
  if not e.warned then begin
    e.warned <- true;
    t.warnings <-
      { Report.w_addr = acc.Report.ac_addr; w_prev = e.last; w_curr = acc }
      :: t.warnings
  end

let on_access t (acc : Report.access) =
  let e = entry_of t acc.Report.ac_addr in
  let tid = acc.Report.ac_tid in
  let locks = acc.Report.ac_locks in
  (match (e.st, acc.Report.ac_kind) with
  | Virgin, _ -> e.st <- Exclusive tid
  | Exclusive t0, _ when t0 = tid -> ()
  | Exclusive _, kind ->
      (* first cross-thread access: candidate set starts here. *)
      e.cand <- Some locks;
      e.st <-
        (match kind with
        | Conair_runtime.Race_probe.Read -> Shared
        | Conair_runtime.Race_probe.Write -> Shared_modified);
      if e.st = Shared_modified && locks = [] then warn t e acc
  | Shared, kind ->
      let c = match e.cand with Some c -> inter c locks | None -> locks in
      e.cand <- Some c;
      if kind = Conair_runtime.Race_probe.Write then begin
        e.st <- Shared_modified;
        if c = [] then warn t e acc
      end
  | Shared_modified, _ ->
      let c = match e.cand with Some c -> inter c locks | None -> locks in
      e.cand <- Some c;
      if c = [] then warn t e acc);
  e.last <- Some acc

let warnings t = List.rev t.warnings
