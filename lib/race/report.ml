(* Race/deadlock findings, and their JSON form.

   Everything here is deterministic given the event stream: accesses are
   recorded in arrival order, cycles are canonicalized (minimum lock
   first) and sorted, and the JSON encoder visits fields in a fixed
   order — so reports are byte-identical across runs with the same seed
   and across the two engines. *)

open Conair_runtime
module Json = Conair_obs.Json

type access = {
  ac_step : int;
  ac_tid : int;
  ac_iid : int;
  ac_stack : string list;  (* innermost first *)
  ac_block : string;
  ac_kind : Race_probe.kind;
  ac_addr : Race_probe.addr;
  ac_locks : string list;  (* sorted *)
}

type race = { rc_addr : Race_probe.addr; rc_prev : access; rc_curr : access }

type warning = {
  w_addr : Race_probe.addr;
  w_prev : access option;  (* last access under a different lockset *)
  w_curr : access;
}

type edge = {
  e_from : string;
  e_to : string;
  e_tid : int;
  e_iid : int;
  e_step : int;
  e_req : bool;  (* witnessed as a blocked request, not an acquisition *)
}

type cycle = { cy_locks : string list; cy_actual : bool; cy_edges : edge list }
type t = { races : race list; warnings : warning list; cycles : cycle list }

let empty = { races = []; warnings = []; cycles = [] }

let addr_string : Race_probe.addr -> string = function
  | A_global g -> "global:" ^ g
  | A_slot (tid, s) -> Printf.sprintf "slot:%d:%s" tid s
  | A_cell (b, i) -> Printf.sprintf "cell:%d:%d" b i
  | A_block b -> Printf.sprintf "block:%d" b

(* The variable name when the race is on a named global — what the
   bugbench ground truth is keyed on. *)
let race_global r =
  match r.rc_addr with Race_probe.A_global g -> Some g | _ -> None

(* Canonical identity of a lock-order cycle: its lock set, which the
   detector already canonicalizes (minimum lock first). Actual and
   potential findings share a key deliberately — a fix that demotes an
   actual deadlock to a still-possible potential one has not removed the
   inversion. *)
let cycle_key c = String.concat "->" c.cy_locks

(* The cycles of [current] whose lock sets the [baseline] report never
   saw, in [current]'s deterministic order — the fix synthesizer's
   deadlock-freedom gate: a candidate patch may keep the cycles the buggy
   program already had (it is no worse), but must not mint new ones. *)
let new_cycles ~baseline current =
  let seen = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace seen (cycle_key c) ()) baseline.cycles;
  List.filter (fun c -> not (Hashtbl.mem seen (cycle_key c))) current.cycles

let kind_string (prev : Race_probe.kind) (curr : Race_probe.kind) =
  match (prev, curr) with
  | Read, Write -> "read-write"
  | Write, Write -> "write-write"
  | Write, Read -> "write-read"
  | Read, Read -> "read-read"

let access_json a =
  Json.Obj
    [
      ("step", Json.Int a.ac_step);
      ("tid", Json.Int a.ac_tid);
      ("iid", Json.Int a.ac_iid);
      ("kind", Json.String (match a.ac_kind with Read -> "read" | Write -> "write"));
      ("block", Json.String a.ac_block);
      ("stack", Json.List (List.map (fun s -> Json.String s) a.ac_stack));
      ("locks", Json.List (List.map (fun s -> Json.String s) a.ac_locks));
    ]

let race_json r =
  Json.Obj
    [
      ("addr", Json.String (addr_string r.rc_addr));
      ("kind", Json.String (kind_string r.rc_prev.ac_kind r.rc_curr.ac_kind));
      ("prev", access_json r.rc_prev);
      ("curr", access_json r.rc_curr);
    ]

let warning_json w =
  Json.Obj
    [
      ("addr", Json.String (addr_string w.w_addr));
      ( "prev",
        match w.w_prev with None -> Json.Null | Some a -> access_json a );
      ("curr", access_json w.w_curr);
    ]

let edge_json e =
  Json.Obj
    [
      ("from", Json.String e.e_from);
      ("to", Json.String e.e_to);
      ("tid", Json.Int e.e_tid);
      ("iid", Json.Int e.e_iid);
      ("step", Json.Int e.e_step);
      ("request", Json.Bool e.e_req);
    ]

let cycle_json c =
  Json.Obj
    [
      ("locks", Json.List (List.map (fun s -> Json.String s) c.cy_locks));
      ("actual", Json.Bool c.cy_actual);
      ("edges", Json.List (List.map edge_json c.cy_edges));
    ]

let to_json t =
  Json.Obj
    [
      ("type", Json.String "races");
      ("races", Json.List (List.map race_json t.races));
      ("lockset_warnings", Json.List (List.map warning_json t.warnings));
      ("deadlock_cycles", Json.List (List.map cycle_json t.cycles));
      ( "summary",
        Json.Obj
          [
            ("races", Json.Int (List.length t.races));
            ("lockset_warnings", Json.Int (List.length t.warnings));
            ( "actual_deadlocks",
              Json.Int
                (List.length (List.filter (fun c -> c.cy_actual) t.cycles)) );
            ( "potential_deadlocks",
              Json.Int
                (List.length (List.filter (fun c -> not c.cy_actual) t.cycles))
            );
          ] );
    ]

let pp_access ppf a =
  Fmt.pf ppf "step %d tid %d iid %d in %s [%s] locks {%s}" a.ac_step a.ac_tid
    a.ac_iid
    (match a.ac_stack with f :: _ -> f | [] -> "?")
    a.ac_block
    (String.concat "," a.ac_locks)

let pp ppf t =
  List.iter
    (fun r ->
      Fmt.pf ppf "race %s on %s@.  prev: %a@.  curr: %a@."
        (kind_string r.rc_prev.ac_kind r.rc_curr.ac_kind)
        (addr_string r.rc_addr) pp_access r.rc_prev pp_access r.rc_curr)
    t.races;
  List.iter
    (fun w ->
      Fmt.pf ppf "lockset warning on %s@.  curr: %a@." (addr_string w.w_addr)
        pp_access w.w_curr)
    t.warnings;
  List.iter
    (fun c ->
      Fmt.pf ppf "%s deadlock cycle: %s@."
        (if c.cy_actual then "actual" else "potential")
        (String.concat " -> " (c.cy_locks @ [ List.hd c.cy_locks ])))
    t.cycles
