(* Vector clocks and FastTrack epochs.

   A clock is a growable array indexed by thread id; entries default to
   0. Thread ids in this runtime are small and dense (allocated from 0
   by the machine), so a flat array beats a map — and the growth policy
   (double, at least to the demanded index) keeps amortized cost O(1).

   An epoch is the FastTrack scalar compression of "the last event of
   thread [t] at clock [c]": checking one epoch against a full clock is
   O(1) where a clock-clock comparison is O(threads). *)

type t = { mutable v : int array }

let create () = { v = Array.make 4 0 }

let ensure t i =
  let n = Array.length t.v in
  if i >= n then begin
    let n' = max (i + 1) (2 * n) in
    let v' = Array.make n' 0 in
    Array.blit t.v 0 v' 0 n;
    t.v <- v'
  end

let get t i = if i < Array.length t.v then t.v.(i) else 0

let set t i x =
  ensure t i;
  t.v.(i) <- x

let incr t i = set t i (get t i + 1)

let copy t = { v = Array.copy t.v }

(* dst := dst ⊔ src, pointwise max. *)
let join ~into src =
  ensure into (Array.length src.v - 1);
  Array.iteri (fun i x -> if x > into.v.(i) then into.v.(i) <- x) src.v

let leq a b =
  let ok = ref true in
  Array.iteri (fun i x -> if x > get b i then ok := false) a.v;
  !ok

(* The highest thread id with a non-zero entry, for bounded iteration. *)
let max_tid t =
  let m = ref (-1) in
  Array.iteri (fun i x -> if x > 0 then m := i) t.v;
  !m

type epoch = { e_tid : int; e_clock : int }

let bottom = { e_tid = 0; e_clock = 0 }
let epoch_of t i = { e_tid = i; e_clock = get t i }

(* e ⪯ c: the event the epoch names happens-before everything the clock
   has seen of its thread. *)
let epoch_leq e c = e.e_clock <= get c e.e_tid
