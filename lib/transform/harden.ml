(* The ConAir code transformation (§3.3), driven by an analysis plan:

   - one [Checkpoint] per live reexecution point (shared between the sites
     that agree on the point, as in the paper);
   - a recovery guard at every recoverable, detectable failure site;
   - [Lock]s at recoverable deadlock sites become [Timed_lock]s;
     unrecoverable deadlock candidates stay plain [Lock]s (§4.2).

   The output also carries the metadata the runtime needs (fail-arm labels
   per site) and the static report feeding Tables 4-6. *)

open Conair_ir
open Conair_analysis
module Label = Ident.Label

type options = {
  lock_timeout : int;  (** scheduler steps before a lock acquisition times out *)
}

let default_options = { lock_timeout = 400 }

type t = {
  program : Program.t;  (** the hardened program *)
  plan : Plan.t;
  checkpoints : (Region.point * int) list;  (** point -> checkpoint id *)
  site_fail_blocks : (Label.t * int) list;
  fail_block_index : (string, int) Hashtbl.t;
      (** [site_fail_blocks] resolved once: fail-arm label name -> site
          id, ready for the runtime's link pass *)
  options : options;
}

(** Number of [Checkpoint] instructions inserted — the static
    reexecution-point count of Table 5. *)
let static_reexec_points h = List.length h.checkpoints

(* A Deadlock-kind site is either a lock acquisition or an event wait;
   the site message distinguishes them (set by Site.classify_instr). *)
let guard_of_site (sp : Plan.site_plan) =
  let site = sp.site in
  match site.kind with
  | Instr.Deadlock when site.msg = "event wait timed out" ->
      fun opts ->
        Rewrite.Guard_wait { site_id = site.site_id; timeout = opts.lock_timeout }
  | Instr.Deadlock -> fun opts -> Rewrite.Guard_lock { site_id = site.site_id; timeout = opts.lock_timeout }
  | Instr.Seg_fault -> fun _ -> Rewrite.Guard_deref { site_id = site.site_id }
  | Instr.Assert_fail | Instr.Wrong_output ->
      fun _ ->
        Rewrite.Guard_assert
          { site_id = site.site_id; kind = site.kind; msg = site.msg }

(** Harden [plan.program] according to [plan]. *)
let apply ?(options = default_options) (plan : Plan.t) : t =
  let edits = Rewrite.create () in
  (* 1. Checkpoints at every live reexecution point. *)
  let checkpoints =
    List.mapi (fun id point -> (point, id)) plan.all_points
  in
  List.iter
    (fun (point, id) ->
      match point with
      | Region.After iid -> Rewrite.insert_after edits iid [ Instr.Checkpoint id ]
      | Region.Entry fname -> Rewrite.prepend_entry edits fname [ Instr.Checkpoint id ])
    checkpoints;
  (* 2. Recovery guards at recoverable, detectable sites. Undetectable
     wrong-output sites (outputs without an oracle) are hardened with
     checkpoints only — there is nothing to branch on. *)
  List.iter
    (fun (sp : Plan.site_plan) ->
      if sp.verdict = Optimize.Recoverable && sp.site.detectable then
        Rewrite.set_guard edits sp.site.iid (guard_of_site sp options))
    plan.site_plans;
  let program, site_fail_blocks = Rewrite.apply edits plan.program in
  let fail_block_index = Hashtbl.create (max 8 (List.length site_fail_blocks)) in
  List.iter
    (fun (l, site) ->
      if not (Hashtbl.mem fail_block_index (Label.name l)) then
        Hashtbl.replace fail_block_index (Label.name l) site)
    site_fail_blocks;
  { program; plan; checkpoints; site_fail_blocks; fail_block_index; options }
