(** Generic CFG surgery for the hardening pass: an edit plan maps
    instruction ids to spliced-in operations and recovery guards, and
    function names to entry-prepended operations. Original instructions
    keep their ids; inserted operations get fresh ids above the program's
    maximum, so id-based analysis results stay valid after rewriting. *)

open Conair_ir
module Label = Ident.Label
module Fname = Ident.Fname

type guard =
  | Guard_assert of { site_id : int; kind : Instr.failure_kind; msg : string }
      (** replaces an [Assert] with the Fig 6 diamond: branch on its
          condition; the failing arm tries recovery then fail-stops *)
  | Guard_deref of { site_id : int }
      (** prepends a [Ptr_guard] sanity check to a dereference (Fig 5c);
          the dereference itself is kept, id unchanged *)
  | Guard_lock of { site_id : int; timeout : int }
      (** replaces a [Lock] with a [Timed_lock] (same id); timing out
          tries recovery (Fig 5d) *)
  | Guard_wait of { site_id : int; timeout : int }
      (** replaces a [Wait] with a [Timed_wait] (same id); the
          lost-wakeup analogue of the Fig 5d transformation *)

type t
(** An edit plan under construction. *)

val create : unit -> t
val insert_before : t -> int -> Instr.op list -> unit
val insert_after : t -> int -> Instr.op list -> unit

val set_guard : t -> int -> guard -> unit
(** @raise Invalid_argument if the instruction already has a guard or a
    replacement. *)

val replace_op : t -> int -> Instr.op -> unit
(** Swap the instruction's operation while keeping its id — the same
    program point, re-purposed (the fix synthesizer's lock fusion turns
    [Lock a] into [Lock fused] this way).
    @raise Invalid_argument if the instruction already has a guard or a
    replacement. *)

val prepend_entry : t -> Fname.t -> Instr.op list -> unit

val apply : t -> Program.t -> Program.t * (Label.t * int) list
(** Apply the plan; also returns the fail-arm labels with their site ids,
    which the runtime uses to notice that a recovering thread has passed
    its failure site. *)
