(* Generic CFG surgery used by the ConAir hardening pass.

   An edit plan maps instruction ids to actions:
   - [before]/[after]: operation lists spliced around the instruction;
   - [guard]: turn the instruction into a branch diamond whose failure arm
     carries the recovery code (the Fig 5/Fig 6 shapes);
   and maps function names to operations prepended at their entry block
   (entry reexecution points).

   Original instructions keep their ids; inserted operations get fresh ids
   above the program's current maximum, so analysis results stated in terms
   of ids stay valid in the rewritten program. *)

open Conair_ir
module Label = Ident.Label
module Fname = Ident.Fname
module Reg = Ident.Reg

type guard =
  | Guard_assert of { site_id : int; kind : Instr.failure_kind; msg : string }
      (** replaces an [Assert]: branch on its condition; the failing arm
          tries recovery then fail-stops (Fig 6) *)
  | Guard_deref of { site_id : int }
      (** applies to [Load_idx]/[Store_idx]: a [Ptr_guard] sanity check is
          inserted before the dereference (Fig 5c); the dereference itself
          is kept, id unchanged *)
  | Guard_lock of { site_id : int; timeout : int }
      (** replaces [Lock] with [Timed_lock]; timing out tries recovery
          (Fig 5d) *)
  | Guard_wait of { site_id : int; timeout : int }
      (** replaces [Wait] with [Timed_wait]; timing out tries recovery —
          the lost-wakeup analogue of the deadlock transformation *)

type actions = {
  before : Instr.op list;
  after : Instr.op list;
  guard : guard option;
  replace : Instr.op option;
}

let no_actions = { before = []; after = []; guard = None; replace = None }

type t = {
  by_iid : (int, actions) Hashtbl.t;
  entry_ops : (string, Instr.op list) Hashtbl.t;  (** keyed by function name *)
}

let create () = { by_iid = Hashtbl.create 64; entry_ops = Hashtbl.create 8 }

let actions_of t iid =
  Option.value ~default:no_actions (Hashtbl.find_opt t.by_iid iid)

let update t iid f = Hashtbl.replace t.by_iid iid (f (actions_of t iid))

let insert_before t iid ops =
  update t iid (fun a -> { a with before = a.before @ ops })

let insert_after t iid ops =
  update t iid (fun a -> { a with after = a.after @ ops })

let set_guard t iid g =
  update t iid (fun a ->
      match (a.guard, a.replace) with
      | Some _, _ -> invalid_arg "Rewrite.set_guard: instruction already guarded"
      | _, Some _ -> invalid_arg "Rewrite.set_guard: instruction already replaced"
      | None, None -> { a with guard = Some g })

let replace_op t iid op =
  update t iid (fun a ->
      match (a.replace, a.guard) with
      | Some _, _ -> invalid_arg "Rewrite.replace_op: instruction already replaced"
      | _, Some _ -> invalid_arg "Rewrite.replace_op: instruction already guarded"
      | None, None -> { a with replace = Some op })

let prepend_entry t fname ops =
  let key = Fname.name fname in
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.entry_ops key) in
  Hashtbl.replace t.entry_ops key (cur @ ops)

(* ------------------------------------------------------------------ *)
(* Application                                                         *)
(* ------------------------------------------------------------------ *)

type fresh = {
  mutable next_iid : int;
  mutable next_sym : int;
  mutable fail_blocks : (Label.t * int) list;
      (** fail-arm labels and their site ids, for the runtime's
          recovery-episode bookkeeping *)
}

let fresh_label fr =
  let n = fr.next_sym in
  fr.next_sym <- n + 1;
  Label.v (Printf.sprintf "__ca%d" n)

let fresh_reg fr =
  let n = fr.next_sym in
  fr.next_sym <- n + 1;
  Reg.v (Printf.sprintf "__ca_r%d" n)

let fresh_instr fr op =
  let iid = fr.next_iid in
  fr.next_iid <- iid + 1;
  { Instr.iid; op }

(* The failure arm shared by all guard shapes: try to recover, and if the
   retry budget is exhausted, stop the program with the failure. *)
let fail_arm fr ~site_id ~kind ~msg ~cont =
  let label = fresh_label fr in
  fr.fail_blocks <- (label, site_id) :: fr.fail_blocks;
  {
    Block.label;
    instrs =
      [|
        fresh_instr fr (Instr.Try_recover { site_id; kind });
        fresh_instr fr (Instr.Fail_stop { site_id; kind; msg });
      |];
    term = Instr.Jump cont;
  }

let apply_block fr (edits : t) (b : Block.t) : Block.t list =
  (* [cur_*] accumulate the block currently being built; emitting a guard
     seals it with a branch and opens a continuation block. *)
  let out = ref [] in
  let cur_label = ref b.label in
  let cur_instrs = ref [] in
  let seal term =
    out :=
      { Block.label = !cur_label; instrs = Array.of_list (List.rev !cur_instrs);
        term }
      :: !out
  in
  let open_cont label =
    cur_label := label;
    cur_instrs := []
  in
  let push_op op = cur_instrs := fresh_instr fr op :: !cur_instrs in
  let push_instr i = cur_instrs := i :: !cur_instrs in
  Array.iter
    (fun (i : Instr.t) ->
      let acts = actions_of edits i.iid in
      List.iter push_op acts.before;
      (match acts.guard with
      | None -> (
          (* A replacement keeps the original id: it is the same program
             point, re-purposed (lock fusion rewrites Lock a -> Lock m). *)
          match acts.replace with
          | None -> push_instr i
          | Some op -> push_instr { i with op })
      | Some (Guard_assert { site_id; kind; msg }) ->
          let cond =
            match i.op with
            | Instr.Assert { cond; _ } -> cond
            | _ -> invalid_arg "Rewrite: Guard_assert on a non-assert"
          in
          let cont = fresh_label fr in
          let fail = fail_arm fr ~site_id ~kind ~msg ~cont in
          seal (Instr.Branch (cond, cont, fail.label));
          out := fail :: !out;
          open_cont cont
      | Some (Guard_deref { site_id }) ->
          let ptr, idx =
            match i.op with
            | Instr.Load_idx (_, p, ix) | Instr.Store_idx (p, ix, _) -> (p, ix)
            | _ -> invalid_arg "Rewrite: Guard_deref on a non-dereference"
          in
          let ok = fresh_reg fr in
          push_op (Instr.Ptr_guard (ok, ptr, idx));
          let cont = fresh_label fr in
          let fail =
            fail_arm fr ~site_id ~kind:Instr.Seg_fault
              ~msg:"invalid pointer dereference" ~cont
          in
          seal (Instr.Branch (Instr.Reg ok, cont, fail.label));
          out := fail :: !out;
          open_cont cont;
          push_instr i
      | Some (Guard_wait { site_id; timeout }) ->
          let e =
            match i.op with
            | Instr.Wait e -> e
            | _ -> invalid_arg "Rewrite: Guard_wait on a non-wait"
          in
          let ok = fresh_reg fr in
          push_instr { i with op = Instr.Timed_wait (ok, e, timeout) };
          let cont = fresh_label fr in
          let fail =
            fail_arm fr ~site_id ~kind:Instr.Deadlock
              ~msg:"event wait timed out" ~cont
          in
          seal (Instr.Branch (Instr.Reg ok, cont, fail.label));
          out := fail :: !out;
          open_cont cont
      | Some (Guard_lock { site_id; timeout }) ->
          let m =
            match i.op with
            | Instr.Lock m -> m
            | _ -> invalid_arg "Rewrite: Guard_lock on a non-lock"
          in
          let ok = fresh_reg fr in
          (* The timed lock inherits the original instruction's id: it is
             the same acquisition, transformed. *)
          push_instr { i with op = Instr.Timed_lock (ok, m, timeout) };
          let cont = fresh_label fr in
          let fail =
            fail_arm fr ~site_id ~kind:Instr.Deadlock
              ~msg:"lock acquisition timed out" ~cont
          in
          seal (Instr.Branch (Instr.Reg ok, cont, fail.label));
          out := fail :: !out;
          open_cont cont);
      List.iter push_op acts.after)
    b.instrs;
  seal b.term;
  List.rev !out

let apply_func fr (edits : t) (f : Func.t) : Func.t =
  let blocks = List.concat_map (apply_block fr edits) f.blocks in
  let blocks =
    match Hashtbl.find_opt edits.entry_ops (Fname.name f.name) with
    | None | Some [] -> blocks
    | Some ops ->
        List.map
          (fun (b : Block.t) ->
            if Label.equal b.label f.entry then
              {
                b with
                Block.instrs =
                  Array.append
                    (Array.of_list (List.map (fresh_instr fr) ops))
                    b.instrs;
              }
            else b)
          blocks
  in
  { f with blocks }

(** Apply the edit plan, returning the rewritten program and the fail-arm
    label/site map the recovery runtime uses to notice when a site has been
    passed successfully. *)
let apply (edits : t) (p : Program.t) : Program.t * (Label.t * int) list =
  let fr =
    { next_iid = Program.max_iid p + 1; next_sym = 0; fail_blocks = [] }
  in
  let funcs = List.map (apply_func fr edits) p.funcs in
  ({ p with funcs }, fr.fail_blocks)
