(** The ConAir code transformation (§3.3): one [Checkpoint] per live
    reexecution point (shared between sites that agree on the point), a
    recovery guard at every recoverable detectable site, and lock →
    timed-lock conversion at recoverable deadlock sites (unrecoverable
    candidates stay plain locks, §4.2). *)

open Conair_ir
open Conair_analysis
module Label = Ident.Label

type options = {
  lock_timeout : int;
      (** scheduler steps before a timed lock acquisition gives up *)
}

val default_options : options

type t = {
  program : Program.t;  (** the hardened program *)
  plan : Plan.t;
  checkpoints : (Region.point * int) list;  (** point → checkpoint id *)
  site_fail_blocks : (Label.t * int) list;
  fail_block_index : (string, int) Hashtbl.t;
      (** [site_fail_blocks] resolved once (fail-arm label name → site
          id), consumed by the runtime's link pass *)
  options : options;
}

val static_reexec_points : t -> int
(** Checkpoints inserted — Table 5's "Static" column. *)

val apply : ?options:options -> Plan.t -> t
