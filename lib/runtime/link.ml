(* The pre-resolution ("link") pass: compile a [Program.t] once, before
   execution, into an execution-ready form the interpreter can run without
   any name lookups on the hot path.

   What is resolved when:

   - register names are interned to dense integer indices per function
     ([Func.reg_universe] order), so a frame's registers live in a flat
     [Value.t array] instead of a persistent map — a checkpoint becomes an
     [Array.copy] blit;
   - every jump and branch label becomes a direct index into the
     function's block array;
   - every call and spawn target becomes an index into the program's
     function array (or [-1] for an unknown callee, which must still fault
     at *execution* time, exactly like the unlinked interpreter — a dead
     call to a missing function is not a link error);
   - the hardening metadata's fail-arm labels are pushed down onto the
     blocks they name ([lb_site]), so the recovery-episode bookkeeping on
     a branch is a field read instead of a list scan.

   Invariant: a linked program is semantically identical to the source
   program under the reference interpreter — same outcomes, outputs, step
   counts, traces and statistics. [test_fast_exec.ml] enforces this over
   the whole bugbench catalog. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

(** A pre-resolved operand: a register index into the frame's array, or
    an immediate. *)
type rarg = L_reg of int | L_const of Value.t

(** Pre-resolved operations, mirroring [Instr.op] one-to-one. Register
    fields are indices into the enclosing function's register array;
    [fid] fields are indices into [lp_funcs] ([-1] = unknown callee). The
    source [Fname.t] is kept for faithful error messages. *)
type lop =
  | L_move of int * rarg
  | L_binop of int * Instr.binop * rarg * rarg
  | L_unop of int * Instr.unop * rarg
  | L_load_global of int * string
  | L_load_stack of int * string
  | L_store_global of string * rarg
  | L_store_stack of string * rarg
  | L_load_idx of int * rarg * rarg
  | L_store_idx of rarg * rarg * rarg
  | L_alloc of int * rarg
  | L_free of rarg
  | L_lock of rarg
  | L_unlock of rarg
  | L_assert of { cond : rarg; msg : string; oracle : bool }
  | L_output of { fmt : string; args : rarg array }
  | L_call of { ret : int option; fid : int; fname : Fname.t; args : rarg array }
  | L_spawn of { reg : int; fid : int; fname : Fname.t; args : rarg array }
  | L_join of rarg
  | L_sleep of int
  | L_nop
  | L_wait of string
  | L_notify of string
  | L_checkpoint of int
  | L_ptr_guard of int * rarg * rarg
  | L_timed_lock of int * rarg * int
  | L_timed_wait of int * string * int
  | L_try_recover of { site_id : int; kind : Instr.failure_kind }
  | L_fail_stop of { site_id : int; kind : Instr.failure_kind; msg : string }

type linstr = {
  li_iid : int;  (** the source instruction id (profiling, crash reports) *)
  li_op : lop;
  li_destroying : bool;  (** [Instr.dynamically_destroying], precomputed *)
}

type lterm =
  | L_jump of int
  | L_branch of rarg * int * int
  | L_return of rarg option
  | L_exit

type lblock = {
  lb_index : int;
  lb_label : Label.t;
  lb_label_name : string;
      (** [Label.name lb_label], precomputed — the profiler hook reads it
          every step and must not format on the hot path *)
  lb_instrs : linstr array;
  lb_term : lterm;
  lb_site : int option;
      (** the hardening site whose fail arm this block is, if any —
          resolved from the harden metadata at link time *)
}

type lfunc = {
  lf_id : int;
  lf_src : Func.t;
  lf_name : Fname.t;
  lf_qname : string;  (** [Fname.name lf_name], precomputed (profiler) *)
  lf_nparams : int;
  lf_param_index : int array;  (** param position -> register index *)
  lf_nregs : int;
  lf_reg_names : Reg.t array;  (** register index -> source name *)
  lf_reg_index : (string, int) Hashtbl.t;  (** register name -> index *)
  lf_blocks : lblock array;
  lf_entry : int;
  lf_block_index : (string, int) Hashtbl.t;  (** label name -> block index *)
}

type program = {
  lp_src : Program.t;
  lp_funcs : lfunc array;
  lp_main : int;
}

(* ------------------------------------------------------------------ *)

let reg_index_exn tbl r =
  match Hashtbl.find_opt tbl (Reg.name r) with
  | Some i -> i
  | None ->
      (* unreachable: the universe covers every register the function
         mentions *)
      invalid_arg (Format.asprintf "Link: unknown register %a" Reg.pp r)

let link_operand regs = function
  | Instr.Reg r -> L_reg (reg_index_exn regs r)
  | Instr.Const v -> L_const v

let link_args regs args = Array.of_list (List.map (link_operand regs) args)

let link_op regs funcs (op : Instr.op) : lop =
  let reg r = reg_index_exn regs r in
  let arg a = link_operand regs a in
  let fid f = Option.value ~default:(-1) (Hashtbl.find_opt funcs (Fname.name f)) in
  match op with
  | Instr.Move (r, a) -> L_move (reg r, arg a)
  | Instr.Binop (r, op, a, b) -> L_binop (reg r, op, arg a, arg b)
  | Instr.Unop (r, op, a) -> L_unop (reg r, op, arg a)
  | Instr.Load (r, Instr.Global g) -> L_load_global (reg r, g)
  | Instr.Load (r, Instr.Stack s) -> L_load_stack (reg r, s)
  | Instr.Store (Instr.Global g, a) -> L_store_global (g, arg a)
  | Instr.Store (Instr.Stack s, a) -> L_store_stack (s, arg a)
  | Instr.Load_idx (r, p, ix) -> L_load_idx (reg r, arg p, arg ix)
  | Instr.Store_idx (p, ix, v) -> L_store_idx (arg p, arg ix, arg v)
  | Instr.Alloc (r, n) -> L_alloc (reg r, arg n)
  | Instr.Free p -> L_free (arg p)
  | Instr.Lock m -> L_lock (arg m)
  | Instr.Unlock m -> L_unlock (arg m)
  | Instr.Assert { cond; msg; oracle } -> L_assert { cond = arg cond; msg; oracle }
  | Instr.Output { fmt; args } -> L_output { fmt; args = link_args regs args }
  | Instr.Call (ret, callee, args) ->
      L_call
        {
          ret = Option.map reg ret;
          fid = fid callee;
          fname = callee;
          args = link_args regs args;
        }
  | Instr.Spawn (r, callee, args) ->
      L_spawn
        { reg = reg r; fid = fid callee; fname = callee; args = link_args regs args }
  | Instr.Join t -> L_join (arg t)
  | Instr.Sleep n -> L_sleep n
  | Instr.Nop -> L_nop
  | Instr.Wait e -> L_wait e
  | Instr.Notify e -> L_notify e
  | Instr.Checkpoint id -> L_checkpoint id
  | Instr.Ptr_guard (r, p, ix) -> L_ptr_guard (reg r, arg p, arg ix)
  | Instr.Timed_lock (r, m, t) -> L_timed_lock (reg r, arg m, t)
  | Instr.Timed_wait (r, e, t) -> L_timed_wait (reg r, e, t)
  | Instr.Try_recover { site_id; kind } -> L_try_recover { site_id; kind }
  | Instr.Fail_stop { site_id; kind; msg } -> L_fail_stop { site_id; kind; msg }

let block_index_exn f blocks label =
  match Hashtbl.find_opt blocks (Label.name label) with
  | Some i -> i
  | None ->
      invalid_arg
        (Format.asprintf "Link: no block %a in %a" Label.pp label Fname.pp
           f.Func.name)

let link_term f blocks regs : Instr.terminator -> lterm = function
  | Instr.Jump l -> L_jump (block_index_exn f blocks l)
  | Instr.Branch (c, t, fl) ->
      L_branch
        (link_operand regs c, block_index_exn f blocks t, block_index_exn f blocks fl)
  | Instr.Return v -> L_return (Option.map (link_operand regs) v)
  | Instr.Exit -> L_exit

let link_func ~fail_index funcs id (f : Func.t) : lfunc =
  let universe = Func.reg_universe f in
  let nregs = List.length universe in
  let reg_names = Array.of_list universe in
  let regs = Hashtbl.create (max 8 nregs) in
  Array.iteri (fun i r -> Hashtbl.replace regs (Reg.name r) i) reg_names;
  let blocks_arr = Array.of_list f.blocks in
  let block_index = Hashtbl.create (max 8 (Array.length blocks_arr)) in
  Array.iteri
    (fun i (b : Block.t) ->
      if not (Hashtbl.mem block_index (Label.name b.label)) then
        Hashtbl.replace block_index (Label.name b.label) i)
    blocks_arr;
  let lblocks =
    Array.mapi
      (fun i (b : Block.t) ->
        {
          lb_index = i;
          lb_label = b.label;
          lb_label_name = Label.name b.label;
          lb_instrs =
            Array.map
              (fun (ins : Instr.t) ->
                {
                  li_iid = ins.iid;
                  li_op = link_op regs funcs ins.op;
                  li_destroying = Instr.dynamically_destroying ins.op;
                })
              b.instrs;
          lb_term = link_term f block_index regs b.term;
          lb_site = Hashtbl.find_opt fail_index (Label.name b.label);
        })
      blocks_arr
  in
  {
    lf_id = id;
    lf_src = f;
    lf_name = f.name;
    lf_qname = Fname.name f.name;
    lf_nparams = List.length f.params;
    lf_param_index =
      Array.of_list (List.map (reg_index_exn regs) f.params);
    lf_nregs = nregs;
    lf_reg_names = reg_names;
    lf_reg_index = regs;
    lf_blocks = lblocks;
    lf_entry = block_index_exn f block_index f.entry;
    lf_block_index = block_index;
  }

(* Linking is deterministic and its output is never mutated, so machines
   created repeatedly over the same program — bench sweeps, schedule
   replay, fuzz loops — share one linked image instead of re-interning
   every name.  Keyed by physical identity of the inputs (the only cheap
   equality on whole programs); a bounded MRU list scanned with [==].
   Held in an [Atomic.t] so concurrent in-process runs (the serve
   daemon's worker pool) can link safely: a racing publish may drop the
   other thread's entry, which only costs a re-link, never a wrong
   result — the cached images are immutable and keyed by identity. *)
let memo :
    (Program.t
    * (Label.t * int) list
    * (string, int) Hashtbl.t option
    * program)
    list
    Atomic.t =
  Atomic.make []

let memo_max = 256

let truncate n l =
  if List.length l <= n then l else List.filteri (fun i _ -> i < n) l

let link_uncached ?(fail_blocks = []) ?fail_index (p : Program.t) : program =
  let funcs = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Func.t) ->
      if not (Hashtbl.mem funcs (Fname.name f.name)) then
        Hashtbl.replace funcs (Fname.name f.name) i)
    p.funcs;
  (* Label -> site id. Prefer a table the hardening pass already resolved;
     otherwise build it from the list, first occurrence winning like the
     list scan the unlinked interpreter did. *)
  let fail_index =
    match fail_index with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create (max 8 (List.length fail_blocks)) in
        List.iter
          (fun (l, site) ->
            if not (Hashtbl.mem tbl (Label.name l)) then
              Hashtbl.replace tbl (Label.name l) site)
          fail_blocks;
        tbl
  in
  let lp_funcs =
    Array.of_list
      (List.mapi (fun i f -> link_func ~fail_index funcs i f) p.funcs)
  in
  let lp_main =
    match Hashtbl.find_opt funcs (Fname.name p.main) with
    | Some i -> i
    | None ->
        invalid_arg
          (Format.asprintf "Program.func_exn: no function %a" Fname.pp p.main)
  in
  { lp_src = p; lp_funcs; lp_main }

(** Pre-resolve [p]. [fail_blocks] is the hardening metadata (fail-arm
    label -> site id); pass [[]] for unhardened programs. Re-linking the
    same inputs returns the first link's image (see [memo] above). *)
let link ?(fail_blocks = []) ?fail_index (p : Program.t) : program =
  let same (p', fb', fi', _) =
    p' == p
    && fb' == fail_blocks
    &&
    match (fi', fail_index) with
    | None, None -> true
    | Some a, Some b -> a == b
    | _ -> false
  in
  match List.find_opt same (Atomic.get memo) with
  | Some (_, _, _, lp) -> lp
  | None ->
      let lp = link_uncached ~fail_blocks ?fail_index p in
      Atomic.set memo
        (truncate memo_max ((p, fail_blocks, fail_index, lp) :: Atomic.get memo));
      lp

let func_by_id lp id = lp.lp_funcs.(id)

(** Look a block index up by label in [f] — the rare path (rollbacks);
    the hot paths use the indices resolved at link time. *)
let find_block_index (f : lfunc) (l : Label.t) =
  Hashtbl.find_opt f.lf_block_index (Label.name l)
