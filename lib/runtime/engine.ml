(* Engine selection: one name, one packed machine type, one generic
   driver API over the three interpreters. Everything that lets a user
   pick an engine — the CLI's [--engine], the fuzzer, the replay driver,
   the facade — goes through this module instead of open-coding a
   three-way match per call site. *)

type t = Ref | Fast | Block

let all = [ Ref; Fast; Block ]
let name = function Ref -> "ref" | Fast -> "fast" | Block -> "block"

let of_string s =
  match s with
  | "ref" -> Ok Ref
  | "fast" -> Ok Fast
  | "block" -> Ok Block
  | _ ->
      Error (Printf.sprintf "unknown engine %S (expected ref, fast or block)" s)

type machine =
  | M_ref of Ref_machine.t
  | M_fast of Machine.t
  | M_block of Block_machine.t

let create ?config ?meta ?hooks engine prog =
  match engine with
  | Ref -> M_ref (Ref_machine.create ?config ?meta ?hooks prog)
  | Fast -> M_fast (Machine.create ?config ?meta ?hooks prog)
  | Block -> M_block (Block_machine.create ?config ?meta ?hooks prog)

let engine_of = function M_ref _ -> Ref | M_fast _ -> Fast | M_block _ -> Block

let run = function
  | M_ref m -> Ref_machine.run m
  | M_fast m -> Machine.run m
  | M_block m -> Block_machine.run m

let step = function
  | M_ref m -> Ref_machine.step m
  | M_fast m -> Machine.step m
  | M_block m -> Block_machine.step m

let outputs = function
  | M_ref m -> Ref_machine.outputs m
  | M_fast m -> Machine.outputs m
  | M_block m -> Block_machine.outputs m

let stats = function
  | M_ref m -> Ref_machine.stats m
  | M_fast m -> Machine.stats m
  | M_block m -> Block_machine.stats m

let steps = function
  | M_ref m -> Ref_machine.steps m
  | M_fast m -> m.Machine.step
  | M_block m -> Block_machine.steps m

let outcome = function
  | M_ref m -> Ref_machine.outcome m
  | M_fast m -> m.Machine.outcome
  | M_block m -> Block_machine.outcome m

let sched = function
  | M_ref m -> Ref_machine.sched m
  | M_fast m -> m.Machine.sched
  | M_block m -> Block_machine.sched m

let hooks = function
  | M_ref m -> Ref_machine.hooks m
  | M_fast m -> Machine.hooks m
  | M_block m -> Block_machine.hooks m

let thread_summaries = function
  | M_ref m -> Ref_machine.thread_summaries m
  | M_fast m -> Machine.thread_summaries m
  | M_block m -> Block_machine.thread_summaries m

let run_program ?config ?meta ?hooks engine prog =
  let m = create ?config ?meta ?hooks engine prog in
  let outcome = run m in
  (m, outcome)
