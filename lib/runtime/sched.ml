(* Scheduling policy: which eligible thread runs the next instruction.

   Determinism matters more than realism here — the paper forces buggy
   interleavings with injected sleeps, and so do the benchmarks; given the
   same policy and seed, a run is exactly reproducible.

   The PRNG, precisely: [Random.State.make [| seed |]] from the OCaml
   standard library, which on this toolchain (OCaml >= 5.0) is the LXM
   generator (L64X128 variant). [Round_robin] never touches the rng (it
   is created with seed 0 but only the cursor is used); [Random seed]
   draws one [Random.State.int] per scheduling decision with more than
   one eligible thread, and the recovery runtime draws from the *same*
   state for deadlock backoff and timing perturbation — the random
   stream is part of the machine semantics, consumed identically by both
   engines (see [choose_idx]).

   Consequence: everything downstream of the schedule is deterministic in
   (program, config, policy, seed) — outcomes, traces, profiles, and the
   race detector's event stream and reports. Same seed, byte-identical
   race reports; a different seed is a genuinely different schedule, which
   is exactly what [conair_fuzz --detect] exploits to count the schedules
   on which a race is observed. *)

type policy =
  | Round_robin  (** strict rotation among eligible threads; rng unused *)
  | Random of int  (** uniform choice, seeded LXM ([Random.State]) *)

type t = { policy : policy; rng : Random.State.t; mutable cursor : int }

let create policy =
  let seed = match policy with Round_robin -> 0 | Random s -> s in
  { policy; rng = Random.State.make [| seed |]; cursor = 0 }

(** Pick one of [eligible] (a non-empty list of thread ids). *)
let choose t eligible =
  match eligible with
  | [] -> invalid_arg "Sched.choose: no eligible thread"
  | [ tid ] -> tid
  | _ -> (
      match t.policy with
      | Round_robin ->
          (* The first eligible tid strictly greater than the last scheduled
             one, wrapping around: a fair rotation even as threads come and
             go. *)
          let next =
            match List.find_opt (fun tid -> tid > t.cursor) eligible with
            | Some tid -> tid
            | None -> List.hd eligible
          in
          t.cursor <- next;
          next
      | Random _ ->
          List.nth eligible (Random.State.int t.rng (List.length eligible)))

(** Index-based choice for the pre-resolved engine: pick an index into an
    eligible array of length [n] ([tid_of i] gives the thread id at slot
    [i], ascending). Consumes the rng and moves the cursor exactly as
    [choose] does on the equivalent list, so the two engines draw the
    same random stream. *)
let choose_idx t ~tid_of n =
  if n <= 0 then invalid_arg "Sched.choose_idx: no eligible thread"
  else if n = 1 then 0
  else
    match t.policy with
    | Round_robin ->
        let rec find i =
          if i >= n then 0 else if tid_of i > t.cursor then i else find (i + 1)
        in
        let i = find 0 in
        t.cursor <- tid_of i;
        i
    | Random _ -> Random.State.int t.rng n

(** The runtime's randomness source (deadlock-recovery backoff). *)
let rng t = t.rng
