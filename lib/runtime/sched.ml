(* Scheduling policy: which eligible thread runs the next instruction.

   Determinism matters more than realism here — the paper forces buggy
   interleavings with injected sleeps, and so do the benchmarks; given the
   same policy and seed, a run is exactly reproducible.

   The PRNG, precisely: [Random.State.make [| seed |]] from the OCaml
   standard library, which on this toolchain (OCaml >= 5.0) is the LXM
   generator (L64X128 variant). [Round_robin] never touches the rng (it
   is created with seed 0 but only the cursor is used); [Random seed]
   draws one [Random.State.int] per scheduling decision with more than
   one eligible thread, and the recovery runtime draws from the *same*
   state for deadlock backoff and timing perturbation — the random
   stream is part of the machine semantics, consumed identically by both
   engines (see [choose_idx]).

   Consequence: everything downstream of the schedule is deterministic in
   (program, config, policy, seed) — outcomes, traces, profiles, and the
   race detector's event stream and reports. Same seed, byte-identical
   race reports; a different seed is a genuinely different schedule, which
   is exactly what [conair_fuzz --detect] exploits to count the schedules
   on which a race is observed.

   The scheduler is also the record/replay seam ([Conair_replay]): an
   optional [tap] observes every decision (eligible set + chosen tid) and
   an optional [feed] overrides the policy's choice. Both default to
   [None] and cost one match per decision when absent, the same
   zero-cost-when-off discipline as the trace/profile/race probes. A fed
   decision still consumes the rng and moves the cursor exactly as the
   policy would have for the same choice, so a strict replay reproduces
   the original random stream — deadlock backoff and timing perturbation
   draws included. *)

type policy =
  | Round_robin  (** strict rotation among eligible threads; rng unused *)
  | Random of int  (** uniform choice, seeded LXM ([Random.State]) *)

type t = {
  policy : policy;
  mutable rng : Random.State.t;
  mutable cursor : int;
  mutable tap : (chosen:int -> eligible:int list -> unit) option;
  mutable feed : (eligible:int list -> int) option;
}

let create policy =
  let seed = match policy with Round_robin -> 0 | Random s -> s in
  {
    policy;
    rng = Random.State.make [| seed |];
    cursor = 0;
    tap = None;
    feed = None;
  }

let set_tap t tap = t.tap <- tap
let set_feed t feed = t.feed <- feed

type saved = { sv_rng : Random.State.t; sv_cursor : int }

let save t = { sv_rng = Random.State.copy t.rng; sv_cursor = t.cursor }

let restore t s =
  t.rng <- Random.State.copy s.sv_rng;
  t.cursor <- s.sv_cursor

(* What the policy itself would pick (never sees an empty list). *)
let decide t eligible =
  match eligible with
  | [ tid ] -> tid
  | _ -> (
      match t.policy with
      | Round_robin ->
          (* The first eligible tid strictly greater than the last scheduled
             one, wrapping around: a fair rotation even as threads come and
             go. *)
          let next =
            match List.find_opt (fun tid -> tid > t.cursor) eligible with
            | Some tid -> tid
            | None -> List.hd eligible
          in
          t.cursor <- next;
          next
      | Random _ ->
          List.nth eligible (Random.State.int t.rng (List.length eligible)))

(* Replicate the policy's side effects for a decision made by a feed:
   consume the same rng draw and move the cursor to the chosen thread, so
   replayed and directed runs keep the downstream random stream (deadlock
   backoff, perturbed timing) aligned with policy-driven runs. *)
let mirror t ~eligible chosen =
  match eligible with
  | [ _ ] -> ()
  | _ -> (
      match t.policy with
      | Round_robin -> t.cursor <- chosen
      | Random _ ->
          ignore (Random.State.int t.rng (List.length eligible)))

let notify t ~chosen ~eligible =
  match t.tap with None -> () | Some f -> f ~chosen ~eligible

(** Pick one of [eligible] (a non-empty list of thread ids). *)
let hooked t = match (t.tap, t.feed) with None, None -> false | _ -> true

let choose t eligible =
  match eligible with
  | [] -> invalid_arg "Sched.choose: no eligible thread"
  | [ tid ] when not (hooked t) -> tid
  | _ ->
      let chosen =
        match t.feed with
        | None -> decide t eligible
        | Some f ->
            let chosen = f ~eligible in
            mirror t ~eligible chosen;
            chosen
      in
      notify t ~chosen ~eligible;
      chosen

(** Index-based choice for the pre-resolved engine: pick an index into an
    eligible array of length [n] ([tid_of i] gives the thread id at slot
    [i], ascending). Consumes the rng and moves the cursor exactly as
    [choose] does on the equivalent list, so the two engines draw the
    same random stream. With a tap or feed installed the eligible list is
    materialized and the decision routed through the list path, keeping
    the hooks' view identical across engines. *)
let choose_idx t ~tid_of n =
  if n <= 0 then invalid_arg "Sched.choose_idx: no eligible thread"
  else if not (hooked t) then
    if n = 1 then 0
    else
      match t.policy with
      | Round_robin ->
          let rec find i =
            if i >= n then 0
            else if tid_of i > t.cursor then i
            else find (i + 1)
          in
          let i = find 0 in
          t.cursor <- tid_of i;
          i
      | Random _ -> Random.State.int t.rng n
  else begin
    let eligible = List.init n tid_of in
    let chosen =
      match t.feed with
      | None -> decide t eligible
      | Some f ->
          let chosen = f ~eligible in
          mirror t ~eligible chosen;
          chosen
    in
    notify t ~chosen ~eligible;
    let rec index i =
      if i >= n then invalid_arg "Sched.choose_idx: fed an ineligible thread"
      else if tid_of i = chosen then i
      else index (i + 1)
    in
    index 0
  end

(** The runtime's randomness source (deadlock-recovery backoff). *)
let rng t = t.rng
