(* The flight recorder's in-memory ring: a fixed-capacity, O(1)-per-event
   record of the recent past of one run, cheap enough to leave on
   everywhere (iReplayer-style always-on in-situ recording).

   Three rings share one clock (the machine's scheduler-decision
   ordinal):

   - the *decision* ring holds the last [cap] scheduler decisions
     (chosen tid per non-idle step) — the tail of exactly the stream a
     [Conair_replay.Recorder] tap would capture;
   - the *preemption* ring holds the absolute ordinals of the most
     recent preemptive context switches (chosen <> previous while the
     previous thread was still eligible), classified with the same rule
     as the recorder;
   - the *event* ring holds the recent synchronization / recovery
     events (lock acquire/block/release, spawn, rollback, recovered,
     failure), recorded only on paths every engine executes
     interpretively or through the shared [Machine] helpers, so the
     ring contents are byte-identical across ref/fast/block.

   Steady state allocates nothing: decisions and preemption ordinals are
   int stores into preallocated arrays, events mutate preallocated
   records in place (the string payloads are existing values — lock
   names, failure messages). The block engine's window fast path records
   a whole window with one [push_run] (an [Array.fill] RLE), which is
   what keeps recorder-on throughput within a few percent of
   recorder-off. *)

type event = {
  mutable fe_kind : int;
  mutable fe_step : int;
  mutable fe_tid : int;
  mutable fe_arg : int;  (** site id, child tid, ... — [-1] when unused *)
  mutable fe_detail : string;  (** lock name, failure message, ... *)
}

(* Event kinds. Only paths that are interpretive on every engine (the
   schedulable ops) or routed through the shared [Machine] helpers
   (set_failure / close_episode / note_branch_taken, which the compiled
   code calls too) may record events — anything emitted from inside
   compiled straight-line code would go missing under the block engine's
   window fast path. *)
let k_acquire = 0
let k_block = 1
let k_release = 2
let k_spawn = 3
let k_rollback = 4
let k_recovered = 5
let k_fail = 6

let kind_name = function
  | 0 -> "acquire"
  | 1 -> "block"
  | 2 -> "release"
  | 3 -> "spawn"
  | 4 -> "rollback"
  | 5 -> "recovered"
  | 6 -> "fail"
  | k -> "unknown:" ^ string_of_int k

type t = {
  cap : int;
  d : int array;  (** decision ring, indexed [ordinal mod cap] *)
  mutable d_total : int;  (** decisions ever pushed *)
  mutable prev : int;  (** previously chosen tid, [-1] before the first *)
  pre : int array;  (** preemption-ordinal ring *)
  mutable pre_total : int;
  evs : event array;
  mutable ev_total : int;
}

let default_capacity = 4096
let default_event_capacity = 256

let create ?(cap = default_capacity) ?(events = default_event_capacity) () =
  if cap <= 0 then invalid_arg "Flight_ring.create: capacity must be positive";
  if events <= 0 then
    invalid_arg "Flight_ring.create: event capacity must be positive";
  {
    cap;
    d = Array.make cap 0;
    d_total = 0;
    prev = -1;
    (* at most one preemption per decision, so [cap] ordinals always
       cover every preemption still inside the decision tail *)
    pre = Array.make cap 0;
    pre_total = 0;
    evs =
      Array.init events (fun _ ->
          { fe_kind = 0; fe_step = 0; fe_tid = 0; fe_arg = -1; fe_detail = "" });
    ev_total = 0;
  }

let capacity t = t.cap
let total t = t.d_total
let prev t = t.prev

let push t tid ~preemptive =
  t.d.(t.d_total mod t.cap) <- tid;
  if preemptive then begin
    t.pre.(t.pre_total mod t.cap) <- t.d_total;
    t.pre_total <- t.pre_total + 1
  end;
  t.d_total <- t.d_total + 1;
  t.prev <- tid

(* A run of [count] consecutive decisions for the same thread — the
   block engine's window. The window invariant (the thread was the only
   eligible one when the window opened, and straight-line code cannot
   make another thread eligible) means none of these decisions is
   preemptive: the first cannot preempt an ineligible predecessor and
   the rest re-choose the same thread. *)
let push_run t tid count =
  if count < 0 then invalid_arg "Flight_ring.push_run: negative count";
  if count > 0 then begin
    if count >= t.cap then Array.fill t.d 0 t.cap tid
    else begin
      let start = t.d_total mod t.cap in
      let first = min count (t.cap - start) in
      Array.fill t.d start first tid;
      if count > first then Array.fill t.d 0 (count - first) tid
    end;
    t.d_total <- t.d_total + count;
    t.prev <- tid
  end

let event t ~kind ~step ~tid ~arg ~detail =
  let e = t.evs.(t.ev_total mod Array.length t.evs) in
  e.fe_kind <- kind;
  e.fe_step <- step;
  e.fe_tid <- tid;
  e.fe_arg <- arg;
  e.fe_detail <- detail;
  t.ev_total <- t.ev_total + 1

(* --- reading the rings out (dump time; allocation is fine here) ----- *)

let tail_first t = t.d_total - min t.d_total t.cap

let tail t =
  let n = min t.d_total t.cap in
  let first = t.d_total - n in
  Array.init n (fun i -> t.d.((first + i) mod t.cap))

(* Absolute ordinals of the preemptive switches inside the decision
   tail, ascending. The preemption ring stores the most recent [cap]
   preemptions; preemptions are at most one per decision, so every
   preemption whose decision is still in the tail is still stored —
   older stored ordinals are filtered out. *)
let tail_preemptions t =
  let n = min t.pre_total t.cap in
  let first = tail_first t in
  let out = ref [] in
  for i = t.pre_total - 1 downto t.pre_total - n do
    let ord = t.pre.(i mod t.cap) in
    if ord >= first then out := ord :: !out
  done;
  Array.of_list !out

let events t =
  let stored = Array.length t.evs in
  let n = min t.ev_total stored in
  List.init n (fun i ->
      let e = t.evs.((t.ev_total - n + i) mod stored) in
      {
        fe_kind = e.fe_kind;
        fe_step = e.fe_step;
        fe_tid = e.fe_tid;
        fe_arg = e.fe_arg;
        fe_detail = e.fe_detail;
      })

let events_total t = t.ev_total
