(** Per-thread interpreter state: the call stack, the single checkpoint
    slot (the thread-local jmp_buf of Fig 6 — only the most recent
    reexecution point is kept), per-site retry counters, and the
    resource-acquisition log behind the §4.1 compensation.

    Frames run the pre-resolved ([Link]ed) program: registers live in a
    flat [Value.t array] indexed by the function's interning, with
    [undef] marking never-written slots. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label

val undef : Value.t
(** The "undefined register" sentinel. Compare with physical equality
    ([==]): only this exact allocation means "never written". *)

type frame = {
  func : Link.lfunc;
  mutable block : Link.lblock;
  mutable idx : int;  (** next instruction; [= length] means terminator *)
  mutable regs : Value.t array;  (** indexed by the function's interning *)
  mutable stack_vars : (string, Value.t) Hashtbl.t option;
      (** named frame slots, allocated on first write; [None] reads as an
          empty table *)
  ret_reg : int option;  (** caller's register index for the return value *)
}

(** The saved register image + program point. Resumption happens after
    the [Checkpoint] instruction (like returning from [setjmp] via
    [longjmp]); the region counter is not re-incremented, so resources
    re-acquired during a retry keep their region tag. The resume block is
    kept by label and re-resolved at rollback against the frame's own
    function (cross-function checkpoints restore registers by name). *)
type checkpoint = {
  ck_depth : int;  (** call-stack depth at save time *)
  ck_func : Link.lfunc;  (** the interning of [ck_regs] *)
  ck_block : Label.t;
  ck_idx : int;
  ck_regs : Value.t array;  (** a private copy, never aliased by a frame *)
  ck_counter : int;
  ck_step : int;  (** when taken, for the rollback-safety verifier *)
}

type status =
  | Runnable
  | Sleeping of int  (** until this step *)
  | Blocked_lock of { name : string; since : int; timeout : int option }
  | Blocked_event of { name : string; since : int; timeout : int option }
  | Blocked_join of int
  | Done
  | Failed

(** A resource acquired inside the current reexecution region, to release
    if it rolls back (§4.1). *)
type resource = R_lock of string | R_block of int

type recovering = { rec_site : int; rec_start : int; rec_retries_before : int }

type t = {
  tid : int;
  mutable stack : frame list;  (** top first *)
  mutable stack_depth : int;  (** invariant: [= List.length stack] *)
  mutable status : status;
  mutable checkpoint : checkpoint option;
  mutable region_counter : int;
  retries : (int, int) Hashtbl.t;  (** site_id → rollbacks so far *)
  mutable acq_log : (resource * int) list;  (** resource, region tag *)
  mutable last_pruned_region : int;  (** region tag the log was last pruned to *)
  mutable last_destroy_step : int;
  mutable recovering : recovering option;
}

val make_frame :
  Link.lfunc -> args:Value.t array -> ret_reg:int option -> frame
(** @raise Invalid_argument on an arity mismatch. *)

val stack_tbl : frame -> (string, Value.t) Hashtbl.t
(** The frame's named-slot table, allocating it on first use. *)

val create : tid:int -> Link.lfunc -> args:Value.t array -> t

val top : t -> frame
(** @raise Invalid_argument on an empty stack. *)

val depth : t -> int
(** O(1): reads the maintained counter. *)

val push_frame : t -> frame -> unit
val pop_frame : t -> frame
(** @raise Invalid_argument on an empty stack. *)

val retries_of : t -> int -> int
val bump_retries : t -> int -> unit

val log_acquisition : t -> resource -> unit
(** Log under the current region tag; entries from older regions are
    dropped the first time the log is touched after the region advances
    (not on every append). *)

val current_region_acquisitions :
  t -> (resource * int) list * (resource * int) list
(** Partition the log into (current region, the rest). *)

val is_live : t -> bool
