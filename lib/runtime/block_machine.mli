(** The block-compiled engine: [Machine]'s state and semantics driven
    through [Compile]'s threaded code.

    The state is a plain [Machine.t]; the driver retires maximal
    straight-line runs of compiled closures in a tight loop whenever the
    scheduler has no choice to make (exactly one eligible thread) and no
    observation hook is installed, consulting the scheduler, probes and
    replay tap/feed only at schedulable operations — exactly where
    [Machine] makes visible decisions. Everything observable (outcomes,
    outputs, step counts, stats, traces, profiles, race reports, JSONL
    telemetry, schedule logs) is bit-for-bit identical to [Machine] and
    [Ref_machine]; with any hook installed every step goes down
    [Machine]'s own generic path — except the flight-recorder ring,
    which windows feed in bulk ([Flight_ring.push_run]) precisely so it
    can stay on always. The three-way differential suite in
    [test_fast_exec.ml] enforces the identity over the bugbench
    catalog. *)

open Conair_ir

type t

type config = Machine.config
type meta = Machine.meta

val create :
  ?config:config -> ?meta:meta -> ?hooks:Hooks.bundle -> Program.t -> t
(** Link and block-compile the program; the main thread is ready to
    run. [hooks] attaches the run's observation hooks at construction,
    same as [Machine.create]. *)

val machine : t -> Machine.t
(** The underlying machine state (shared, not a copy). *)

val hooks : t -> Hooks.target
(** The machine's six hook slots, bundled for [Hooks.install] and the
    [Hooks.with_installed] compatibility shim. *)

val outputs : t -> string list
(** In emission order. *)

val stats : t -> Stats.t
val thread : t -> int -> Thread.t
val live_threads : t -> int list
val thread_summaries : t -> (int * string * string list) list
val sched : t -> Sched.t
val outcome : t -> Outcome.t option

val steps : t -> int
(** Virtual time: scheduler steps taken so far (idle ticks included). *)

val step : t -> bool
(** One generic scheduler step ([Machine.step] on the shared state);
    [false] once the program has finished. Single-stepping never uses
    the compiled fast path — it exists for inspection loops where
    per-step control matters more than throughput. *)

val run : t -> Outcome.t
(** Run to completion or until the fuel runs out, using the compiled
    fast path wherever the scheduler's choice is forced and no hook is
    installed. *)

val run_program : ?config:config -> ?meta:meta -> Program.t -> t * Outcome.t
