(** Named mutexes. Non-reentrant, like [pthread_mutex_t]: a thread
    re-acquiring a lock it already holds blocks itself forever. Locks may
    also spring into existence on first use (run-time mutex
    initialization). *)

type state = { mutable owner : int option; mutable acquisitions : int }
type t = (string, state) Hashtbl.t

val create : string list -> t
val get : t -> string -> state
val is_free : t -> string -> bool
val owner : t -> string -> int option

val try_acquire : t -> string -> tid:int -> bool
(** False when held — including by [tid] itself. *)

val release : t -> string -> tid:int -> (unit, string) result
(** Error if [tid] is not the owner. *)

val force_release : t -> string -> tid:int -> bool
(** Unconditional release for the recovery compensation; true iff [tid]
    held the lock. *)

val held_by : t -> tid:int -> string list
(** The locks currently held by [tid], sorted by name (independent of
    hash-table iteration order) — the lockset attached to race-probe
    events. *)

val snapshot : t -> t
