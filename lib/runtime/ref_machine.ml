(* The *reference* Mir interpreter: the original map-based implementation,
   kept verbatim as a semantic oracle.

   [Machine] runs pre-resolved ([Link]ed) programs with array registers
   and index-resolved control flow; this module still walks the source
   [Program.t] directly — persistent register maps, label lookups by list
   scan, a thread-table fold per scheduler step. It is several times
   slower, and that is the point: the two engines must agree bit-for-bit
   (outcomes, outputs, step counts, traces, statistics) on every program,
   which [test_fast_exec.ml] checks across the bugbench catalog, and the
   bench's interp mode measures the speedup between them.

   Do not optimize this file. Any intentional semantic change to the
   execution model must be made in both engines, and the differential
   test updated alongside. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

(* The original per-thread state: persistent register maps, list stack,
   list acquisition log (with the historical filter-on-every-append
   behaviour). *)
module T = struct
  type frame = {
    func : Func.t;
    mutable block : Block.t;
    mutable idx : int;
    mutable regs : Value.t Reg.Map.t;
    stack_vars : (string, Value.t) Hashtbl.t;
    ret_reg : Reg.t option;
  }

  type checkpoint = {
    ck_depth : int;
    ck_block : Label.t;
    ck_idx : int;
    ck_regs : Value.t Reg.Map.t;
    ck_counter : int;
    ck_step : int;
  }

  type status =
    | Runnable
    | Sleeping of int
    | Blocked_lock of { name : string; since : int; timeout : int option }
    | Blocked_event of { name : string; since : int; timeout : int option }
    | Blocked_join of int
    | Done
    | Failed

  type resource = R_lock of string | R_block of int

  type recovering = { rec_site : int; rec_start : int; rec_retries_before : int }

  type t = {
    tid : int;
    mutable stack : frame list;
    mutable status : status;
    mutable checkpoint : checkpoint option;
    mutable region_counter : int;
    retries : (int, int) Hashtbl.t;
    mutable acq_log : (resource * int) list;
    mutable last_destroy_step : int;
    mutable recovering : recovering option;
  }

  let make_frame (func : Func.t) ~args ~ret_reg =
    if List.length func.params <> List.length args then
      invalid_arg
        (Format.asprintf "call to %a: arity mismatch" Ident.Fname.pp func.name);
    let regs =
      List.fold_left2
        (fun m p a -> Reg.Map.add p a m)
        Reg.Map.empty func.params args
    in
    {
      func;
      block = Func.block_exn func func.entry;
      idx = 0;
      regs;
      stack_vars = Hashtbl.create 8;
      ret_reg;
    }

  let create ~tid (func : Func.t) ~args =
    {
      tid;
      stack = [ make_frame func ~args ~ret_reg:None ];
      status = Runnable;
      checkpoint = None;
      region_counter = 0;
      retries = Hashtbl.create 4;
      acq_log = [];
      last_destroy_step = -1;
      recovering = None;
    }

  let top t =
    match t.stack with
    | f :: _ -> f
    | [] -> invalid_arg "Thread.top: empty stack"

  let depth t = List.length t.stack

  let retries_of t site =
    Option.value ~default:0 (Hashtbl.find_opt t.retries site)

  let bump_retries t site = Hashtbl.replace t.retries site (retries_of t site + 1)

  let log_acquisition t r =
    let keep =
      List.filter (fun (_, tag) -> tag = t.region_counter) t.acq_log
    in
    t.acq_log <- (r, t.region_counter) :: keep

  let current_region_acquisitions t =
    List.partition (fun (_, tag) -> tag = t.region_counter) t.acq_log

  let is_live t =
    match t.status with
    | Done | Failed -> false
    | Runnable | Sleeping _ | Blocked_lock _ | Blocked_event _ | Blocked_join _
      ->
        true
end

type config = Machine.config
type meta = Machine.meta

exception Fault of string

type t = {
  prog : Program.t;
  config : config;
  meta : meta option;
  globals : (string, Value.t) Hashtbl.t;
  heap : Heap.t;
  locks : Locks.t;
  threads : (int, T.t) Hashtbl.t;
  mutable next_tid : int;
  mutable step : int;
  mutable outputs : string list;
  stats : Stats.t;
  sched : Sched.t;
  mutable outcome : Outcome.t option;
  mutable trace : Trace.sink option;
  mutable prof : Profile.probe option;
  mutable race : Race_probe.probe option;
  mutable flight : Flight_ring.t option;
}

let create ?(config = Machine.default_config) ?meta ?(hooks = Hooks.none)
    (prog : Program.t) =
  let globals = Hashtbl.create 32 in
  List.iter (fun (g, v) -> Hashtbl.replace globals g v) prog.globals;
  let m =
    {
      prog;
      config;
      meta;
      globals;
      heap = Heap.create ();
      locks = Locks.create prog.mutexes;
      threads = Hashtbl.create 8;
      next_tid = 0;
      step = 0;
      outputs = [];
      stats = Stats.create ();
      sched = Sched.create config.policy;
      outcome = None;
      trace = hooks.Hooks.hb_trace;
      prof = hooks.Hooks.hb_profile;
      race = hooks.Hooks.hb_race;
      flight = hooks.Hooks.hb_flight;
    }
  in
  Sched.set_tap m.sched hooks.Hooks.hb_tap;
  Sched.set_feed m.sched hooks.Hooks.hb_feed;
  let main = Program.func_exn prog prog.main in
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  Hashtbl.replace m.threads tid (T.create ~tid main ~args:[]);
  m

let outputs m = List.rev m.outputs
let stats m = m.stats
let sched m = m.sched

let hooks m =
  {
    Hooks.ht_trace = (fun s -> m.trace <- s);
    ht_profile = (fun p -> m.prof <- p);
    ht_race = (fun p -> m.race <- p);
    ht_flight = (fun f -> m.flight <- f);
    ht_sched = m.sched;
  }

let trace m ev =
  match m.trace with None -> () | Some sink -> Trace.record sink ev

let flight_event m ~kind ~tid ~arg ~detail =
  match m.flight with
  | None -> ()
  | Some fl -> Flight_ring.event fl ~kind ~step:m.step ~tid ~arg ~detail

let thread m tid = Hashtbl.find m.threads tid

(* --- race-probe emission (mirrors [Machine]'s, on [T] threads) ------ *)

let race_stack (th : T.t) =
  List.map (fun (f : T.frame) -> Fname.name f.T.func.Func.name) th.T.stack

let race_access m (th : T.t) (i : Instr.t) kind addr =
  match m.race with
  | None -> ()
  | Some p ->
      let fr = T.top th in
      p.Race_probe.rp_access ~step:m.step ~tid:th.T.tid ~iid:i.Instr.iid
        ~stack:(race_stack th)
        ~block:(Label.name fr.T.block.Block.label)
        ~kind ~addr
        ~locks:(Locks.held_by m.locks ~tid:th.T.tid)

let race_global m th i kind g =
  match m.race with
  | None -> ()
  | Some _ -> race_access m th i kind (Race_probe.A_global g)

let race_slot m (th : T.t) i kind s =
  match m.race with
  | None -> ()
  | Some _ -> race_access m th i kind (Race_probe.A_slot (th.T.tid, s))

let race_cell m th i kind pv idx =
  match m.race with
  | None -> ()
  | Some _ -> (
      match pv with
      | Value.Ptr { Value.block; offset } ->
          race_access m th i kind (Race_probe.A_cell (block, offset + idx))
      | _ -> ())

let race_free m th i pv =
  match m.race with
  | None -> ()
  | Some _ -> (
      match pv with
      | Value.Ptr { Value.block; _ } ->
          race_access m th i Race_probe.Write (Race_probe.A_block block)
      | _ -> ())

let race_acquire m (th : T.t) (i : Instr.t) name =
  match m.race with
  | None -> ()
  | Some p ->
      p.Race_probe.rp_acquire ~step:m.step ~tid:th.T.tid ~iid:i.Instr.iid
        ~lock:name
        ~locks:(Locks.held_by m.locks ~tid:th.T.tid)

let race_request m (th : T.t) (i : Instr.t) name =
  match m.race with
  | None -> ()
  | Some p ->
      p.Race_probe.rp_request ~step:m.step ~tid:th.T.tid ~iid:i.Instr.iid
        ~lock:name
        ~locks:(Locks.held_by m.locks ~tid:th.T.tid)

let race_release m (th : T.t) name =
  match m.race with
  | None -> ()
  | Some p -> p.Race_probe.rp_release ~step:m.step ~tid:th.T.tid ~lock:name

let live_threads m =
  Hashtbl.fold (fun tid th acc -> if T.is_live th then tid :: acc else acc)
    m.threads []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Evaluation helpers                                                  *)
(* ------------------------------------------------------------------ *)

let eval_reg (fr : T.frame) r =
  match Reg.Map.find_opt r fr.regs with
  | Some v -> v
  | None ->
      raise (Fault (Format.asprintf "use of undefined register %a" Reg.pp r))

let eval (fr : T.frame) = function
  | Instr.Reg r -> eval_reg fr r
  | Instr.Const v -> v

let as_int = function
  | Value.Int n -> n
  | Value.Bool true -> 1
  | Value.Bool false -> 0
  | v -> raise (Fault ("expected an integer, got " ^ Value.to_string v))

let as_mutex = function
  | Value.Mutex name -> name
  | v -> raise (Fault ("expected a mutex, got " ^ Value.to_string v))

let eval_binop op a b =
  let module I = Instr in
  match op with
  | I.Add -> Value.Int (as_int a + as_int b)
  | I.Sub -> Value.Int (as_int a - as_int b)
  | I.Mul -> Value.Int (as_int a * as_int b)
  | I.Div ->
      let d = as_int b in
      if d = 0 then raise (Fault "division by zero") else Value.Int (as_int a / d)
  | I.Mod ->
      let d = as_int b in
      if d = 0 then raise (Fault "modulo by zero") else Value.Int (as_int a mod d)
  | I.Eq -> Value.Bool (Value.equal a b)
  | I.Ne -> Value.Bool (not (Value.equal a b))
  | I.Lt -> Value.Bool (as_int a < as_int b)
  | I.Le -> Value.Bool (as_int a <= as_int b)
  | I.Gt -> Value.Bool (as_int a > as_int b)
  | I.Ge -> Value.Bool (as_int a >= as_int b)
  | I.And -> Value.Bool (Value.is_true a && Value.is_true b)
  | I.Or -> Value.Bool (Value.is_true a || Value.is_true b)

let eval_unop op a =
  match op with
  | Instr.Not -> Value.Bool (not (Value.is_true a))
  | Instr.Neg -> Value.Int (-as_int a)
  | Instr.Is_null -> Value.Bool (match a with Value.Null -> true | _ -> false)

let render_output fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let i = ref 0 in
  let n = String.length fmt in
  while !i < n do
    if !i + 1 < n && fmt.[!i] = '%' && fmt.[!i + 1] = 'v' then begin
      (match !args with
      | a :: rest ->
          Buffer.add_string buf (Value.to_string a);
          args := rest
      | [] -> Buffer.add_string buf "%v");
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Failure bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

let set_failure m ~kind ~site_id ~iid ~tid ~msg =
  (match (thread m tid).T.status with
  | T.Done | T.Failed -> ()
  | _ -> (thread m tid).T.status <- T.Failed);
  flight_event m ~kind:Flight_ring.k_fail ~tid
    ~arg:(match site_id with Some s -> s | None -> -1)
    ~detail:msg;
  m.outcome <-
    Some (Outcome.Failed { kind; site_id; iid; tid; step = m.step; msg })

let note_branch_taken m (th : T.t) ~taken ~other =
  match (m.meta, th.recovering) with
  | Some meta, Some rec_ -> (
      let site_of l =
        List.find_opt
          (fun (lbl, _) -> Label.equal lbl l)
          meta.Machine.fail_blocks
      in
      match site_of other with
      | Some (_, site) when site = rec_.rec_site && not (Label.equal taken other)
        ->
          let ep =
            {
              Stats.ep_site_id = site;
              ep_tid = th.tid;
              ep_start = rec_.rec_start;
              ep_end = m.step;
              ep_retries = T.retries_of th site - rec_.rec_retries_before;
            }
          in
          m.stats.episodes <- ep :: m.stats.episodes;
          trace m
            (Trace.Ev_recovered { step = m.step; tid = th.tid; site_id = site });
          flight_event m ~kind:Flight_ring.k_recovered ~tid:th.tid ~arg:site
            ~detail:"";
          th.recovering <- None
      | _ -> ())
  | _ -> ()

let close_episode m (th : T.t) =
  match th.recovering with
  | None -> ()
  | Some rec_ ->
      let ep =
        {
          Stats.ep_site_id = rec_.rec_site;
          ep_tid = th.tid;
          ep_start = rec_.rec_start;
          ep_end = m.step;
          ep_retries = T.retries_of th rec_.rec_site - rec_.rec_retries_before;
        }
      in
      m.stats.episodes <- ep :: m.stats.episodes;
      trace m
        (Trace.Ev_recovered { step = m.step; tid = th.tid; site_id = rec_.rec_site });
      flight_event m ~kind:Flight_ring.k_recovered ~tid:th.tid
        ~arg:rec_.rec_site ~detail:"";
      th.recovering <- None

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let compensate m (th : T.t) =
  let current, rest = T.current_region_acquisitions th in
  List.iter
    (fun (r, _) ->
      match r with
      | T.R_lock name ->
          if Locks.force_release m.locks name ~tid:th.tid then begin
            m.stats.compensated_locks <- m.stats.compensated_locks + 1;
            trace m (Trace.Ev_compensate_lock { step = m.step; tid = th.tid; lock = name });
            flight_event m ~kind:Flight_ring.k_release ~tid:th.tid ~arg:(-1)
              ~detail:name;
            race_release m th name
          end
      | T.R_block id ->
          if Heap.release_block m.heap id then begin
            m.stats.compensated_blocks <- m.stats.compensated_blocks + 1;
            trace m (Trace.Ev_compensate_block { step = m.step; tid = th.tid; block = id })
          end)
    current;
  th.acq_log <- rest

let rollback m (th : T.t) (ck : T.checkpoint) =
  if m.config.verify_rollbacks && th.last_destroy_step > ck.ck_step then
    m.stats.tracecheck_violations <- m.stats.tracecheck_violations + 1;
  let rec drop stack =
    if List.length stack > ck.ck_depth then
      match stack with _ :: tl -> drop tl | [] -> []
    else stack
  in
  th.stack <- drop th.stack;
  let fr = T.top th in
  fr.regs <- ck.ck_regs;
  fr.block <- Func.block_exn fr.func ck.ck_block;
  fr.idx <- ck.ck_idx;
  th.status <- T.Runnable;
  m.stats.rollbacks <- m.stats.rollbacks + 1

let checkpoint_applicable (th : T.t) (ck : T.checkpoint) =
  T.depth th >= ck.ck_depth
  &&
  match List.nth_opt th.stack (T.depth th - ck.ck_depth) with
  | Some fr -> Func.find_block fr.func ck.ck_block <> None
  | None -> false

let try_recover m (th : T.t) ~site_id ~kind =
  match th.checkpoint with
  | Some ck
    when T.retries_of th site_id < m.config.max_retries
         && checkpoint_applicable th ck ->
      (match th.recovering with
      | Some r when r.rec_site = site_id -> ()
      | Some _ -> close_episode m th
      | None -> ());
      if th.recovering = None then
        th.recovering <-
          Some
            {
              T.rec_site = site_id;
              rec_start = m.step;
              rec_retries_before = T.retries_of th site_id;
            };
      T.bump_retries th site_id;
      trace m
        (Trace.Ev_rollback
           { step = m.step; tid = th.tid; site_id;
             retry = T.retries_of th site_id });
      (match m.prof with
      | None -> ()
      | Some p -> p.Profile.p_rollback ~step:m.step ~tid:th.tid ~site_id);
      flight_event m ~kind:Flight_ring.k_rollback ~tid:th.tid ~arg:site_id
        ~detail:"";
      compensate m th;
      rollback m th ck;
      if kind = Instr.Deadlock && m.config.deadlock_backoff > 0 then begin
        let pause = 1 + Random.State.int (Sched.rng m.sched) m.config.deadlock_backoff in
        th.status <- T.Sleeping (m.step + pause)
      end;
      true
  | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

let advance (fr : T.frame) = fr.idx <- fr.idx + 1

let in_wait_cycle m ~tid ~lock =
  let rec chase lock_name seen =
    match Locks.owner m.locks lock_name with
    | None -> false
    | Some owner when owner = tid -> true
    | Some owner ->
        if List.mem owner seen then false
        else begin
          match (thread m owner).T.status with
          | T.Blocked_lock { name; _ } -> chase name (owner :: seen)
          | _ -> false
        end
  in
  chase lock []

let do_return m (th : T.t) v =
  match th.stack with
  | [] -> invalid_arg "return with empty stack"
  | frame :: rest -> (
      th.stack <- rest;
      match rest with
      | [] ->
          close_episode m th;
          trace m (Trace.Ev_thread_done { step = m.step; tid = th.tid });
          th.status <- T.Done
      | caller :: _ -> (
          match frame.ret_reg with
          | None -> ()
          | Some r -> (
              match v with
              | Some value -> caller.regs <- Reg.Map.add r value caller.regs
              | None ->
                  raise (Fault "function returned no value but one was expected"))))

let exec_call m (th : T.t) ~ret ~callee ~args =
  let fr = T.top th in
  let argv = List.map (eval fr) args in
  advance fr;
  let f =
    match Program.find_func m.prog callee with
    | Some f -> f
    | None -> raise (Fault (Format.asprintf "call to unknown %a" Fname.pp callee))
  in
  th.stack <- T.make_frame f ~args:argv ~ret_reg:ret :: th.stack

let exec_spawn m (th : T.t) ~reg ~callee ~args =
  let fr = T.top th in
  let argv = List.map (eval fr) args in
  let f =
    match Program.find_func m.prog callee with
    | Some f -> f
    | None ->
        raise (Fault (Format.asprintf "spawn of unknown %a" Fname.pp callee))
  in
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  let th' = T.create ~tid f ~args:argv in
  if m.config.perturb_timing && m.config.spawn_jitter > 0 then
    th'.status <-
      T.Sleeping
        (m.step + Random.State.int (Sched.rng m.sched) m.config.spawn_jitter);
  Hashtbl.replace m.threads tid th';
  trace m (Trace.Ev_spawn { step = m.step; parent = th.tid; child = tid });
  (match m.race with
  | None -> ()
  | Some p -> p.Race_probe.rp_spawn ~step:m.step ~parent:th.tid ~child:tid);
  flight_event m ~kind:Flight_ring.k_spawn ~tid:th.tid ~arg:tid ~detail:"";
  fr.regs <- Reg.Map.add reg (Value.Tid tid) fr.regs;
  advance fr

let exec_instr m (th : T.t) (i : Instr.t) =
  let fr = T.top th in
  let set r v = fr.regs <- Reg.Map.add r v fr.regs in
  if Instr.dynamically_destroying i.op then th.last_destroy_step <- m.step;
  if th.recovering <> None && Instr.dynamically_destroying i.op then
    close_episode m th;
  match i.op with
  | Instr.Move (r, a) ->
      set r (eval fr a);
      advance fr
  | Instr.Binop (r, op, a, b) ->
      set r (eval_binop op (eval fr a) (eval fr b));
      advance fr
  | Instr.Unop (r, op, a) ->
      set r (eval_unop op (eval fr a));
      advance fr
  | Instr.Load (r, Instr.Global g) -> (
      race_global m th i Race_probe.Read g;
      match Hashtbl.find_opt m.globals g with
      | Some v ->
          set r v;
          advance fr
      | None -> raise (Fault ("load of undeclared global " ^ g)))
  | Instr.Load (r, Instr.Stack s) ->
      race_slot m th i Race_probe.Read s;
      set r (Option.value ~default:Value.zero (Hashtbl.find_opt fr.stack_vars s));
      advance fr
  | Instr.Store (Instr.Global g, a) ->
      race_global m th i Race_probe.Write g;
      if Hashtbl.mem m.globals g then begin
        Hashtbl.replace m.globals g (eval fr a);
        advance fr
      end
      else raise (Fault ("store to undeclared global " ^ g))
  | Instr.Store (Instr.Stack s, a) ->
      race_slot m th i Race_probe.Write s;
      Hashtbl.replace fr.stack_vars s (eval fr a);
      advance fr
  | Instr.Load_idx (r, p, ix) -> (
      (* operands bound right-to-left, preserving the original argument
         evaluation order; the access is reported before the heap op so
         faulting dereferences are still seen by the detector *)
      let iv = as_int (eval fr ix) in
      let pv = eval fr p in
      race_cell m th i Race_probe.Read pv iv;
      match Heap.load m.heap pv iv with
      | Ok v ->
          set r v;
          advance fr
      | Error e -> raise (Fault e))
  | Instr.Store_idx (p, ix, v) -> (
      let vv = eval fr v in
      let iv = as_int (eval fr ix) in
      let pv = eval fr p in
      race_cell m th i Race_probe.Write pv iv;
      match Heap.store m.heap pv iv vv with
      | Ok () -> advance fr
      | Error e -> raise (Fault e))
  | Instr.Alloc (r, n) ->
      let ptr = Heap.alloc m.heap (as_int (eval fr n)) in
      T.log_acquisition th (T.R_block ptr.Value.block);
      set r (Value.Ptr ptr);
      advance fr
  | Instr.Free p -> (
      let pv = eval fr p in
      race_free m th i pv;
      match Heap.free m.heap pv with
      | Ok () -> advance fr
      | Error e -> raise (Fault e))
  | Instr.Lock mref ->
      let name = as_mutex (eval fr mref) in
      if Locks.try_acquire m.locks name ~tid:th.tid then begin
        T.log_acquisition th (T.R_lock name);
        race_acquire m th i name;
        flight_event m ~kind:Flight_ring.k_acquire ~tid:th.tid ~arg:(-1)
          ~detail:name;
        th.status <- T.Runnable;
        advance fr
      end
      else begin
        match th.status with
        | T.Blocked_lock _ -> ()
        | _ ->
            trace m (Trace.Ev_block { step = m.step; tid = th.tid; lock = name });
            race_request m th i name;
            flight_event m ~kind:Flight_ring.k_block ~tid:th.tid ~arg:(-1)
              ~detail:name;
            th.status <-
              T.Blocked_lock { name; since = m.step; timeout = None }
      end
  | Instr.Timed_lock (r, mref, timeout) ->
      let name = as_mutex (eval fr mref) in
      if Locks.try_acquire m.locks name ~tid:th.tid then begin
        T.log_acquisition th (T.R_lock name);
        race_acquire m th i name;
        flight_event m ~kind:Flight_ring.k_acquire ~tid:th.tid ~arg:(-1)
          ~detail:name;
        set r Value.truth;
        th.status <- T.Runnable;
        advance fr
      end
      else begin
        let since =
          match th.status with
          | T.Blocked_lock { since; _ } -> since
          | _ -> m.step
        in
        let detected_cycle =
          m.config.deadlock_detection = Machine.Wait_graph
          && in_wait_cycle m ~tid:th.tid ~lock:name
        in
        if detected_cycle || m.step - since >= timeout then begin
          set r (Value.Bool false);
          th.status <- T.Runnable;
          advance fr
        end
        else begin
          (match th.status with
          | T.Blocked_lock _ -> ()
          | _ ->
              trace m
                (Trace.Ev_block { step = m.step; tid = th.tid; lock = name });
              race_request m th i name;
              flight_event m ~kind:Flight_ring.k_block ~tid:th.tid ~arg:(-1)
                ~detail:name);
          th.status <-
            T.Blocked_lock { name; since; timeout = Some timeout }
        end
      end
  | Instr.Unlock mref -> (
      let name = as_mutex (eval fr mref) in
      match Locks.release m.locks name ~tid:th.tid with
      | Ok () ->
          race_release m th name;
          flight_event m ~kind:Flight_ring.k_release ~tid:th.tid ~arg:(-1)
            ~detail:name;
          advance fr
      | Error e -> raise (Fault e))
  | Instr.Assert { cond; msg; oracle } ->
      if Value.is_true (eval fr cond) then advance fr
      else
        let kind = if oracle then Instr.Wrong_output else Instr.Assert_fail in
        set_failure m ~kind ~site_id:None ~iid:(Some i.iid) ~tid:th.tid ~msg
  | Instr.Output { fmt; args } ->
      let text = render_output fmt (List.map (eval fr) args) in
      m.outputs <- text :: m.outputs;
      m.stats.outputs <- m.stats.outputs + 1;
      trace m (Trace.Ev_output { step = m.step; tid = th.tid; text });
      advance fr
  | Instr.Call (ret, callee, args) -> exec_call m th ~ret ~callee ~args
  | Instr.Spawn (r, callee, args) -> exec_spawn m th ~reg:r ~callee ~args
  | Instr.Join t -> (
      match eval fr t with
      | Value.Tid tid -> (
          match (thread m tid).T.status with
          | T.Done | T.Failed ->
              (match m.race with
              | None -> ()
              | Some p ->
                  p.Race_probe.rp_join ~step:m.step ~tid:th.tid ~joined:tid);
              th.status <- T.Runnable;
              advance fr
          | _ -> th.status <- T.Blocked_join tid)
      | v -> raise (Fault ("join of a non-thread value " ^ Value.to_string v)))
  | Instr.Sleep n ->
      let n =
        if m.config.perturb_timing && n > 0 then
          Random.State.int (Sched.rng m.sched) (n + 1)
        else n
      in
      th.status <- T.Sleeping (m.step + n);
      advance fr
  | Instr.Nop -> advance fr
  | Instr.Wait name -> (
      match th.status with
      | T.Blocked_event _ -> ()
      | _ ->
          trace m
            (Trace.Ev_block
               { step = m.step; tid = th.tid; lock = "event:" ^ name });
          flight_event m ~kind:Flight_ring.k_block ~tid:th.tid ~arg:1
            ~detail:name;
          th.status <-
            T.Blocked_event { name; since = m.step; timeout = None })
  | Instr.Timed_wait (r, name, timeout) ->
      let since =
        match th.status with
        | T.Blocked_event { since; _ } -> since
        | _ -> m.step
      in
      if m.step - since >= timeout then begin
        set r (Value.Bool false);
        th.status <- T.Runnable;
        advance fr
      end
      else begin
        (match th.status with
        | T.Blocked_event _ -> ()
        | _ ->
            trace m
              (Trace.Ev_block
                 { step = m.step; tid = th.tid; lock = "event:" ^ name });
            flight_event m ~kind:Flight_ring.k_block ~tid:th.tid ~arg:1
              ~detail:name);
        th.status <-
          T.Blocked_event { name; since; timeout = Some timeout }
      end
  | Instr.Notify name ->
      Hashtbl.iter
        (fun _ (waiter : T.t) ->
          match waiter.status with
          | T.Blocked_event { name = n; _ } when n = name ->
              let wfr = T.top waiter in
              (match wfr.block.instrs.(wfr.idx).op with
              | Instr.Timed_wait (r, _, _) ->
                  wfr.regs <- Reg.Map.add r Value.truth wfr.regs
              | _ -> ());
              wfr.idx <- wfr.idx + 1;
              waiter.status <- T.Runnable;
              trace m (Trace.Ev_wake { step = m.step; tid = waiter.tid });
              (match m.race with
              | None -> ()
              | Some p ->
                  p.Race_probe.rp_wake ~step:m.step ~waker:th.tid
                    ~woken:waiter.tid)
          | _ -> ())
        m.threads;
      advance fr
  | Instr.Checkpoint id ->
      th.region_counter <- th.region_counter + 1;
      advance fr;
      th.checkpoint <-
        Some
          {
            T.ck_depth = T.depth th;
            ck_block = fr.block.label;
            ck_idx = fr.idx;
            ck_regs = fr.regs;
            ck_counter = th.region_counter;
            ck_step = m.step;
          };
      Stats.hit_checkpoint m.stats id;
      trace m (Trace.Ev_checkpoint { step = m.step; tid = th.tid; ckpt_id = id })
  | Instr.Ptr_guard (r, p, ix) ->
      set r (Value.Bool (Heap.valid m.heap (eval fr p) (as_int (eval fr ix))));
      advance fr
  | Instr.Try_recover { site_id; kind } ->
      trace m
        (Trace.Ev_failure_detected { step = m.step; tid = th.tid; site_id; kind });
      if not (try_recover m th ~site_id ~kind) then advance fr
  | Instr.Fail_stop { site_id; kind; msg } ->
      close_episode m th;
      trace m (Trace.Ev_fail_stop { step = m.step; tid = th.tid; site_id });
      set_failure m ~kind ~site_id:(Some site_id) ~iid:(Some i.iid)
        ~tid:th.tid ~msg

let exec_terminator m (th : T.t) =
  let fr = T.top th in
  match fr.block.term with
  | Instr.Jump l ->
      fr.block <- Func.block_exn fr.func l;
      fr.idx <- 0
  | Instr.Branch (c, t, f) ->
      let taken, other = if Value.is_true (eval fr c) then (t, f) else (f, t) in
      note_branch_taken m th ~taken ~other;
      fr.block <- Func.block_exn fr.func taken;
      fr.idx <- 0
  | Instr.Return v ->
      let value = Option.map (eval fr) v in
      do_return m th value
  | Instr.Exit ->
      th.status <- T.Done;
      m.outcome <- Some Outcome.Success

(* ------------------------------------------------------------------ *)
(* The scheduler loop                                                  *)
(* ------------------------------------------------------------------ *)

let eligible m (th : T.t) =
  match th.status with
  | T.Runnable -> true
  | T.Sleeping until -> m.step >= until
  | T.Blocked_lock { name; since; timeout } ->
      Locks.is_free m.locks name
      || (match timeout with Some t -> m.step - since >= t | None -> false)
      || (m.config.deadlock_detection = Machine.Wait_graph
         && timeout <> None
         && in_wait_cycle m ~tid:th.tid ~lock:name)
  | T.Blocked_event { since; timeout; _ } -> (
      match timeout with Some t -> m.step - since >= t | None -> false)
  | T.Blocked_join tid -> (
      match (thread m tid).T.status with
      | T.Done | T.Failed -> true
      | _ -> false)
  | T.Done | T.Failed -> false

let run_thread_step m tid =
  let th = thread m tid in
  (match th.status with
  | T.Sleeping _ ->
      trace m (Trace.Ev_wake { step = m.step; tid });
      th.status <- T.Runnable
  | _ -> ());
  m.stats.instrs <- m.stats.instrs + 1;
  trace m (Trace.Ev_schedule { step = m.step; tid });
  (if m.config.profile_sites then
     let fr = T.top th in
     if fr.idx < Block.length fr.block then
       Stats.hit_iid m.stats fr.block.instrs.(fr.idx).Instr.iid);
  (match m.prof with
  | None -> ()
  | Some p ->
      let fr = T.top th in
      let stack =
        List.map (fun (f : T.frame) -> Fname.name f.func.Func.name) th.stack
      in
      let at_ckpt =
        fr.idx < Block.length fr.block
        &&
        match fr.block.instrs.(fr.idx).Instr.op with
        | Instr.Checkpoint _ -> true
        | _ -> false
      in
      let cls = if at_ckpt then Profile.Checkpoint else Profile.Normal in
      p.Profile.p_step ~step:m.step ~tid ~stack
        ~block:(Label.name fr.block.label) ~cls);
  let at_iid =
    match th.stack with
    | fr :: _ when fr.idx < Block.length fr.block ->
        Some fr.block.instrs.(fr.idx).Instr.iid
    | _ -> None
  in
  try
    let fr = T.top th in
    if fr.idx < Block.length fr.block then
      exec_instr m th fr.block.instrs.(fr.idx)
    else exec_terminator m th
  with Fault msg ->
    close_episode m th;
    set_failure m ~kind:Instr.Seg_fault ~site_id:None ~iid:at_iid ~tid ~msg

let step m =
  match m.outcome with
  | Some _ -> false
  | None ->
      let live = live_threads m in
      if live = [] then begin
        m.outcome <- Some Outcome.Success;
        false
      end
      else begin
        let ready = List.filter (fun tid -> eligible m (thread m tid)) live in
        (match ready with
        | [] ->
            let waiting_on_time =
              List.exists
                (fun tid ->
                  match (thread m tid).T.status with
                  | T.Sleeping _
                  | T.Blocked_lock { timeout = Some _; _ }
                  | T.Blocked_event { timeout = Some _; _ } ->
                      true
                  | _ -> false)
                live
            in
            if waiting_on_time then begin
              (match m.prof with
              | None -> ()
              | Some p -> p.Profile.p_idle ~step:m.step);
              m.step <- m.step + 1;
              m.stats.idle <- m.stats.idle + 1;
              m.stats.steps <- m.stats.steps + 1
            end
            else
              m.outcome <- Some (Outcome.Hang { step = m.step; blocked = live })
        | _ :: _ ->
            let tid = Sched.choose m.sched ready in
            (match m.flight with
            | None -> ()
            | Some fl ->
                let p = Flight_ring.prev fl in
                Flight_ring.push fl tid
                  ~preemptive:(tid <> p && p >= 0 && List.mem p ready));
            run_thread_step m tid;
            m.step <- m.step + 1;
            m.stats.steps <- m.stats.steps + 1);
        m.outcome = None
      end

let run m =
  let rec go () =
    if m.step >= m.config.fuel then begin
      m.outcome <- Some (Outcome.Fuel_exhausted m.step);
      Outcome.Fuel_exhausted m.step
    end
    else if step m then go ()
    else Option.value ~default:Outcome.Success m.outcome
  in
  go ()

let run_program ?config ?meta prog =
  let m = create ?config ?meta prog in
  let outcome = run m in
  (m, outcome)

let outcome m = m.outcome
let steps m = m.step

(* Mirrors [Machine.thread_summaries]: same status strings, same sort,
   so bundles are byte-identical across engines. *)
let thread_summaries m =
  Hashtbl.fold
    (fun tid (th : T.t) acc ->
      let status =
        match th.T.status with
        | T.Runnable -> "runnable"
        | T.Sleeping until -> "sleeping:" ^ string_of_int until
        | T.Blocked_lock { name; _ } -> "blocked_lock:" ^ name
        | T.Blocked_event { name; _ } -> "blocked_event:" ^ name
        | T.Blocked_join t -> "blocked_join:" ^ string_of_int t
        | T.Done -> "done"
        | T.Failed -> "failed"
      in
      (tid, status, Locks.held_by m.locks ~tid) :: acc)
    m.threads []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
