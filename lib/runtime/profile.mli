(** The engine-side probe of the deterministic cost profiler.

    A machine holds a [probe option] (see [Machine.set_profile] /
    [Ref_machine.set_profile]) and invokes the callbacks as it executes —
    one [match] per scheduler step when off, mirroring [Trace.sink]. The
    accumulator lives in [Conair_obs.Prof]; this module only defines the
    callback record so the runtime need not depend on the obs layer.

    All quantities are virtual time (scheduler steps); the profile is as
    deterministic as the execution itself and byte-identical across the
    fast and reference engines. *)

type step_class =
  | Normal  (** an ordinary instruction or terminator *)
  | Checkpoint  (** a [Checkpoint] pseudo-instruction *)

type probe = {
  p_step :
    step:int ->
    tid:int ->
    stack:string list ->
    block:string ->
    cls:step_class ->
    unit;
      (** One step of thread [tid] at virtual time [step] is about to
          execute. [stack]: call stack as function names, innermost frame
          first. [block]: the current block's label. *)
  p_rollback : step:int -> tid:int -> site_id:int -> unit;
      (** Thread [tid] rolls back; steps retired since its checkpoint are
          wasted work charged to failure site [site_id]. *)
  p_idle : step:int -> unit;
      (** Virtual time passed with no thread eligible. *)
}
