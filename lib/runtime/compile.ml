(* The block-compilation ("threaded code") pass over [Link]'s output.

   [Link] already resolved every name to a dense index; this pass goes
   further. Each linked instruction becomes ONE OCaml closure with its
   operand decoding done at compile time: register indices, constants,
   callee functions, jump targets and fault-message strings are captured
   in the closure's environment, so executing it is a single indirect
   call with no [match] over the opcode and no operand
   re-interpretation. The closure executes its body and tail-calls the
   *next* instruction's closure: [cb_chain.(i)] is the fused run from
   index [i]. Chains share their tails — compiling a block of [n]
   instructions builds [O(n)] closures — and because every index has a
   chain, a thread that re-enters a block mid-way still lands on fused
   code.

   Control transfers chain too: a jump, branch, call or return link
   moves the program point and then — if the window's step budget
   ([m.wbound], owned by [Block_machine]) covers the target's worst-case
   run — tail-calls straight into the target block's chain, never
   returning to the driver. A long single-threaded stretch therefore
   executes as one closure-to-closure trampoline, and the driver is
   consulted only when the budget runs low or a stopper is reached.

   The unit of partitioning is the *schedulable operation*. Instructions
   that can only affect the executing thread's own registers, stack
   slots, heap cells or globals — and can therefore never change another
   thread's eligibility — compile to real code; the schedulable ones
   (lock/unlock, spawn/join, sleep, wait/notify, recovery and fail-stop,
   i.e. exactly the points where [Machine]'s scheduler makes visible
   decisions) are chain stoppers that tell the driver to fall back to
   the generic per-step path. Retiring the runs in between without
   consulting the scheduler is semantics-preserving precisely when the
   scheduler's choice over the window is forced (one eligible thread)
   and unobserved (no tap/feed installed).

   Every instruction also gets a single-step form, [cb_one.(i)]: the
   same compiled link with the [halt] continuation in place of its
   successor. The driver uses it to retire the tail of a window one
   step at a time when the remaining budget is smaller than the chain,
   and [Block_machine]'s compiled generic step uses it (with the budget
   floored, so transfers never chain) to dispatch single steps in
   multi-threaded phases without [exec_instr]'s interpretive match.

   Step accounting is batched per straight-line segment. A maximal run
   of [C_line] links (plain data ops: moves, binops, loads, asserts —
   anything that reads neither [m.step] nor [fr.idx] and whose only
   side effect besides register/global writes is a possible fault) is
   entered through a closure that adds the whole segment's length to
   [m.step] up front; the member closures then touch no counters and
   never write [fr.idx]. Observable equivalence is restored at the two
   places it could leak: a member that faults at slot [k] first parks
   [fr.idx <- k] and subtracts the not-yet-retired tail of the batch
   ([seg_fault]), and an assert that fails does the same before
   recording the failure — so the [m.step] a checkpoint's [ck_step], a
   failure record or a fault observer sees is exactly the
   one-at-a-time value. Links that themselves read or record the
   counters (checkpoints, destroying preambles reading
   [last_destroy_step]) compile as [C_self]: they sit outside any
   batch, write their own [fr.idx] and count their own step after the
   body like the per-step drivers do. Terminators also count their own
   step as they execute, and park [fr.idx] only at fault-raising
   sites; the one fault that historically fired after a frame pop
   (return-with-no-value) is compiled inline instead of raised.

   Every closure replicates [Machine.exec_instr]'s behaviour for its
   opcode *including evaluation order* (binop operands bind
   right-to-left, call arguments left-to-right, like the interpreter)
   and fault messages, and reuses [Machine]'s own helpers
   ([eval_binop], [do_return], [set_failure], ...) off the hot paths so
   the engines cannot drift. The differential suite in
   [test_fast_exec.ml] enforces bit-for-bit identity over the bugbench
   catalog. *)

open Conair_ir
module Reg = Ident.Reg
module Fname = Ident.Fname

(* Chain results, as unboxed ints so a run's completion allocates
   nothing. Everything retired up to the returned point has already
   bumped [m.step]. *)
let t_refresh = 0
let t_end = 1
let t_sched = 2
let t_failed = 3
let t_single = 4

type chain = Machine.t -> Thread.t -> Thread.frame -> int

type cblock = {
  cb_chain : chain array;
      (** indexed by [fr.idx]; slot [length lb_instrs] is the
          terminator: the fused run from that entry point *)
  cb_one : chain array;
      (** same links with the [halt] continuation: retires exactly one
          instruction (transfers still gate on [m.wbound]) *)
  cb_iids : int array;  (** per-instruction iids, for fault reports *)
  cb_need : int array;
      (** worst-case step budget the chain at this index consumes
          before its next [m.wbound] gate, counting the generic step of
          a stopping schedulable op *)
  cb_sched : bool array;
      (** true where the slot holds a schedulable-op stopper *)
}

type program = cblock array array  (** indexed [lf_id].(lb_index) *)

let halt : chain = fun _ _ _ -> t_single

let dummy_cblock =
  {
    cb_chain = [||];
    cb_one = [||];
    cb_iids = [||];
    cb_need = [||];
    cb_sched = [||];
  }

(* Operand getters: the compile-time half of [Machine.eval]. The
   undefined-register message is rendered at fault time, exactly like
   [Machine.eval] — rendering it eagerly here would put a [Format]
   round trip on every compiled operand and dominate compilation. *)
let undef_msg (f : Link.lfunc) (i : int) =
  Format.asprintf "use of undefined register %a" Reg.pp f.Link.lf_reg_names.(i)

let getter (f : Link.lfunc) (a : Link.rarg) : Thread.frame -> Value.t =
  match a with
  | Link.L_const v -> fun _ -> v
  | Link.L_reg i ->
      fun fr ->
        let v = fr.Thread.regs.(i) in
        if v == Thread.undef then raise (Machine.Fault (undef_msg f i)) else v

(* Shared boolean results: [Value.t] carries no identity anywhere but the
   [undef] sentinel, so comparison ops can reuse one allocation. *)
let vtrue = Value.Bool true
let vfalse = Value.Bool false

(* Compile-time specialization of [Machine.eval_binop] for the operand
   shapes the fully-inlined arms below don't cover: the all-integer arms
   run inline; anything else (mixed types, division by zero) delegates
   to the interpreter's own [eval_binop], so coercion faults and their
   messages stay byte-identical. *)
let binop_fn (op : Instr.binop) : Value.t -> Value.t -> Value.t =
  match op with
  | Instr.Add -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y -> Value.Int (x + y)
        | _ -> Machine.eval_binop op a b)
  | Instr.Sub -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y -> Value.Int (x - y)
        | _ -> Machine.eval_binop op a b)
  | Instr.Mul -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y -> Value.Int (x * y)
        | _ -> Machine.eval_binop op a b)
  | Instr.Div -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y when y <> 0 -> Value.Int (x / y)
        | _ -> Machine.eval_binop op a b)
  | Instr.Mod -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y when y <> 0 -> Value.Int (x mod y)
        | _ -> Machine.eval_binop op a b)
  | Instr.Lt -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y -> if x < y then vtrue else vfalse
        | _ -> Machine.eval_binop op a b)
  | Instr.Le -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y -> if x <= y then vtrue else vfalse
        | _ -> Machine.eval_binop op a b)
  | Instr.Gt -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y -> if x > y then vtrue else vfalse
        | _ -> Machine.eval_binop op a b)
  | Instr.Ge -> (
      fun a b ->
        match (a, b) with
        | Value.Int x, Value.Int y -> if x >= y then vtrue else vfalse
        | _ -> Machine.eval_binop op a b)
  | Instr.Eq -> (fun a b -> if Value.equal a b then vtrue else vfalse)
  | Instr.Ne -> (fun a b -> if Value.equal a b then vfalse else vtrue)
  | Instr.And | Instr.Or -> Machine.eval_binop op

(* How an instruction participates in the closure arrays.

   [C_line] ops — the fully-inlined register-only bodies — fuse into
   *segments*: maximal consecutive runs of them, over which the chain
   form does batched step accounting. The segment's entry closure adds
   the whole segment's step count to [m.step] up front ([pre]) and no
   closure in the segment touches [fr.idx] or [m.step] again until the
   segment's end; a fault site rolls the batch back by its static
   distance to the segment end ([fix], counting itself) and parks
   [fr.idx] on the faulting instruction, restoring exactly the state
   the per-step engines would show. A [C_line] op must never be
   dynamically destroying: the destroying preamble reads [m.step]
   mid-segment, where the batch has it ahead of time.

   [C_self] ops — anything with a complex body (hashtables, heap,
   rendering) — keep per-step accounting: the body counts its own step
   and moves [fr.idx] itself, entered through a [self_idx] prologue
   that re-parks [fr.idx] on the op (chains leave it stale inside
   segments), so their fault attribution works unchanged.

   Builders take care to return a closure from under a [let] so the
   partial application is a real closure, not a [caml_curry]
   trampoline. *)
type comp =
  | C_sched  (** schedulable: a stopper in both forms *)
  | C_line of (pre:int -> fix:int -> chain -> chain)
      (** instantiated three ways: segment entry ([pre = fix] = steps to
          the segment end), segment interior ([pre = 0]), and
          single-step ([pre = fix = 0], continuation [one_halt]) *)
  | C_self of (chain -> chain)
  | C_halt of chain
      (** one closure serves both forms (calls and always-faulting ops:
          the chain ends with the op either way) *)

(* Cold continuations for fused-segment links. A fault must land with
   [fr.idx] at the faulting instruction and the segment's batched step
   count rolled back to the instructions actually retired: [fix] is the
   faulting op's static distance to its segment end, itself included —
   exactly the batched steps that did *not* happen. *)
let seg_fault k fix m (fr : Thread.frame) msg =
  fr.Thread.idx <- k;
  if fix <> 0 then m.Machine.step <- m.Machine.step - fix;
  raise (Machine.Fault msg)

let seg_binop k fix op m fr va vb =
  try Machine.eval_binop op va vb
  with Machine.Fault msg -> seg_fault k fix m fr msg

(* The single-step continuation of a [C_line] body: retire exactly this
   instruction, exactly as the per-step engines account it. *)
let one_halt j : chain =
 fun m _ fr ->
  fr.Thread.idx <- j;
  m.Machine.step <- m.Machine.step + 1;
  t_single

(* A schedulable-op stopper: park the program point on the op (chains
   leave [fr.idx] stale inside segments) and hand back to the driver. *)
let stop_at k : chain =
 fun _ _ fr ->
  fr.Thread.idx <- k;
  t_sched

(* [C_self]/[C_halt] prologue: re-park [fr.idx] on the op so bodies that
   advance it relatively, read it (checkpoints) or fault through getters
   see exactly the per-step engines' value. *)
let self_idx k (body : chain) : chain =
 fun m th fr ->
  fr.Thread.idx <- k;
  body m th fr

(* [exec_instr]'s destroying preamble, compiled in only where the static
   flag is set. Applied to inline ops only: descriptor ops run the
   preamble inside [Machine.exec_instr] itself. Links bump [m.step]
   after it runs, so [last_destroy_step] matches the per-step engines
   exactly. *)
let destroying_link (i : Link.linstr) (body : chain) : chain =
  if not i.Link.li_destroying then body
  else
    fun m th fr ->
      th.Thread.last_destroy_step <- m.Machine.step;
      (match th.Thread.recovering with
      | None -> ()
      | Some _ -> Machine.close_episode m th);
      body m th fr

(* Fresh register files for compiled calls. The unrolled sizes compile
   to inline allocations; [Array.make] is an out-of-line C call, which
   is most of a small frame's cost. *)
let new_regs n =
  let u = Thread.undef in
  match n with
  | 1 -> [| u |]
  | 2 -> [| u; u |]
  | 3 -> [| u; u; u |]
  | 4 -> [| u; u; u; u |]
  | 5 -> [| u; u; u; u; u |]
  | 6 -> [| u; u; u; u; u; u |]
  | 7 -> [| u; u; u; u; u; u; u |]
  | 8 -> [| u; u; u; u; u; u; u; u |]
  | _ -> Array.make n u

let compile_comp (prog : program) (f : Link.lfunc) (lp : Link.program)
    (k : int) (i : Link.linstr) : comp =
  match i.Link.li_op with
  (* -- schedulable ops: chain stoppers, generic-path descriptors ------ *)
  | Link.L_lock _ | Link.L_timed_lock _ | Link.L_unlock _ | Link.L_spawn _
  | Link.L_join _ | Link.L_sleep _ | Link.L_wait _ | Link.L_timed_wait _
  | Link.L_notify _ | Link.L_try_recover _ | Link.L_fail_stop _ ->
      C_sched
  (* -- straight-line ops: compiled to code --------------------------- *)
  | Link.L_move (r, a) -> (
      match a with
      | Link.L_const v ->
          C_line
            (fun ~pre ~fix:_ next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                fr.Thread.regs.(r) <- v;
                next m th fr
              in
              l)
      | Link.L_reg ia ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let v = fr.Thread.regs.(ia) in
                if v == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <- v;
                next m th fr
              in
              l))
  | Link.L_binop (r, op, a, b) -> (
      (* operands bind right-to-left, like [eval_binop op (eval fr a)
         (eval fr b)] in the interpreter; every specialization below
         keeps that order (b's undefined-register fault wins over a's).
         The arithmetic/comparison ops on the two hot operand shapes are
         inlined outright — non-[Int] operands and division by zero
         delegate to [Machine.eval_binop] for byte-identical faults. *)
      match (a, b, op) with
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Add ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x -> Value.Int (x + y)
                  | _ -> seg_binop k fix Instr.Add m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Sub ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x -> Value.Int (x - y)
                  | _ -> seg_binop k fix Instr.Sub m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Mul ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x -> Value.Int (x * y)
                  | _ -> seg_binop k fix Instr.Mul m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Div ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x when y <> 0 -> Value.Int (x / y)
                  | _ -> seg_binop k fix Instr.Div m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Mod ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x when y <> 0 -> Value.Int (x mod y)
                  | _ -> seg_binop k fix Instr.Mod m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Lt ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x -> if x < y then vtrue else vfalse
                  | _ -> seg_binop k fix Instr.Lt m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Le ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x -> if x <= y then vtrue else vfalse
                  | _ -> seg_binop k fix Instr.Le m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Gt ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x -> if x > y then vtrue else vfalse
                  | _ -> seg_binop k fix Instr.Gt m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_const (Value.Int y as vb), Instr.Ge ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match va with
                  | Value.Int x -> if x >= y then vtrue else vfalse
                  | _ -> seg_binop k fix Instr.Ge m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Add ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y -> Value.Int (x + y)
                  | _ -> seg_binop k fix Instr.Add m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Sub ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y -> Value.Int (x - y)
                  | _ -> seg_binop k fix Instr.Sub m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Mul ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y -> Value.Int (x * y)
                  | _ -> seg_binop k fix Instr.Mul m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Div ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y when y <> 0 -> Value.Int (x / y)
                  | _ -> seg_binop k fix Instr.Div m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Mod ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y when y <> 0 -> Value.Int (x mod y)
                  | _ -> seg_binop k fix Instr.Mod m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Lt ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y -> if x < y then vtrue else vfalse
                  | _ -> seg_binop k fix Instr.Lt m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Le ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y -> if x <= y then vtrue else vfalse
                  | _ -> seg_binop k fix Instr.Le m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Gt ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y -> if x > y then vtrue else vfalse
                  | _ -> seg_binop k fix Instr.Gt m fr va vb);
                next m th fr
              in
              l)
      | Link.L_reg ia, Link.L_reg ib, Instr.Ge ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                fr.Thread.regs.(r) <-
                  (match (va, vb) with
                  | Value.Int x, Value.Int y -> if x >= y then vtrue else vfalse
                  | _ -> seg_binop k fix Instr.Ge m fr va vb);
                next m th fr
              in
              l)
      | _ -> (
          let bf = binop_fn op in
          match (a, b) with
          | Link.L_reg ia, Link.L_const vb ->
              C_line
                (fun ~pre ~fix next ->
                  let l m th fr =
                    if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                    let va = fr.Thread.regs.(ia) in
                    if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                    fr.Thread.regs.(r) <-
                      (try bf va vb with Machine.Fault emsg -> seg_fault k fix m fr emsg);
                    next m th fr
                  in
                  l)
          | Link.L_reg ia, Link.L_reg ib ->
              C_line
                (fun ~pre ~fix next ->
                  let l m th fr =
                    if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                    let vb = fr.Thread.regs.(ib) in
                    if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                    let va = fr.Thread.regs.(ia) in
                    if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                    fr.Thread.regs.(r) <-
                      (try bf va vb with Machine.Fault emsg -> seg_fault k fix m fr emsg);
                    next m th fr
                  in
                  l)
          | _ ->
              let ga = getter f a and gb = getter f b in
              C_self
                (fun next ->
                  let l m th fr =
                    let vb = gb fr in
                    let va = ga fr in
                    fr.Thread.regs.(r) <- bf va vb;
                    fr.Thread.idx <- fr.Thread.idx + 1;
                    m.Machine.step <- m.Machine.step + 1;
                    next m th fr
                  in
                  l)))
  | Link.L_unop (r, op, a) -> (
      match a with
      | Link.L_reg ia ->
          C_self
            (fun next ->
              let l m th fr =
                let v = fr.Thread.regs.(ia) in
                if v == Thread.undef then raise (Machine.Fault (undef_msg f ia));
                fr.Thread.regs.(r) <- Machine.eval_unop op v;
                fr.Thread.idx <- fr.Thread.idx + 1;
                m.Machine.step <- m.Machine.step + 1;
                next m th fr
              in
              l)
      | _ ->
          let ga = getter f a in
          C_self
            (fun next ->
              let l m th fr =
                fr.Thread.regs.(r) <- Machine.eval_unop op (ga fr);
                fr.Thread.idx <- fr.Thread.idx + 1;
                m.Machine.step <- m.Machine.step + 1;
                next m th fr
              in
              l))
  | Link.L_load_global (r, g) ->
      let msg = "load of undeclared global " ^ g in
      C_line
        (fun ~pre ~fix next ->
          let l m th fr =
            if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
            (match Hashtbl.find_opt m.Machine.globals g with
            | Some v -> fr.Thread.regs.(r) <- v
            | None -> seg_fault k fix m fr msg);
            next m th fr
          in
          l)
  | Link.L_load_stack (r, s) ->
      C_line
        (fun ~pre ~fix:_ next ->
          let l m th fr =
            if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
            fr.Thread.regs.(r) <-
              (match fr.Thread.stack_vars with
              | None -> Value.zero
              | Some h ->
                  Option.value ~default:Value.zero (Hashtbl.find_opt h s));
            next m th fr
          in
          l)
  | Link.L_store_global (g, a) ->
      let ga = getter f a in
      let msg = "store to undeclared global " ^ g in
      C_self
        (fun next ->
          let l m th fr =
            if Hashtbl.mem m.Machine.globals g then begin
              Hashtbl.replace m.Machine.globals g (ga fr);
              fr.Thread.idx <- fr.Thread.idx + 1;
              m.Machine.step <- m.Machine.step + 1;
              next m th fr
            end
            else raise (Machine.Fault msg)
          in
          l)
  | Link.L_store_stack (s, a) ->
      let ga = getter f a in
      C_self
        (fun next ->
          let l m th fr =
            Hashtbl.replace (Thread.stack_tbl fr) s (ga fr);
            fr.Thread.idx <- fr.Thread.idx + 1;
            m.Machine.step <- m.Machine.step + 1;
            next m th fr
          in
          l)
  | Link.L_load_idx (r, p, ix) ->
      let gp = getter f p and gix = getter f ix in
      C_self
        (fun next ->
          let l m th fr =
            let iv = Machine.as_int (gix fr) in
            let pv = gp fr in
            match Heap.load m.Machine.heap pv iv with
            | Ok v ->
                fr.Thread.regs.(r) <- v;
                fr.Thread.idx <- fr.Thread.idx + 1;
                m.Machine.step <- m.Machine.step + 1;
                next m th fr
            | Error e -> raise (Machine.Fault e)
          in
          l)
  | Link.L_store_idx (p, ix, v) ->
      let gp = getter f p and gix = getter f ix and gv = getter f v in
      C_self
        (fun next ->
          let l m th fr =
            let vv = gv fr in
            let iv = Machine.as_int (gix fr) in
            let pv = gp fr in
            match Heap.store m.Machine.heap pv iv vv with
            | Ok () ->
                fr.Thread.idx <- fr.Thread.idx + 1;
                m.Machine.step <- m.Machine.step + 1;
                next m th fr
            | Error e -> raise (Machine.Fault e)
          in
          l)
  | Link.L_alloc (r, n) ->
      let gn = getter f n in
      C_self
        (fun next ->
          let l m th fr =
            let ptr = Heap.alloc m.Machine.heap (Machine.as_int (gn fr)) in
            Thread.log_acquisition th (Thread.R_block ptr.Value.block);
            fr.Thread.regs.(r) <- Value.Ptr ptr;
            fr.Thread.idx <- fr.Thread.idx + 1;
            m.Machine.step <- m.Machine.step + 1;
            next m th fr
          in
          l)
  | Link.L_free p ->
      let gp = getter f p in
      C_self
        (fun next ->
          let l m th fr =
            let pv = gp fr in
            match Heap.free m.Machine.heap pv with
            | Ok () ->
                fr.Thread.idx <- fr.Thread.idx + 1;
                m.Machine.step <- m.Machine.step + 1;
                next m th fr
            | Error e -> raise (Machine.Fault e)
          in
          l)
  | Link.L_assert { cond; msg; oracle } -> (
      let kind = if oracle then Instr.Wrong_output else Instr.Assert_fail in
      let iid = i.Link.li_iid in
      (* the failure arm parks [fr.idx] on the assert and rolls the
         batch back before [set_failure] reads [m.step], then counts the
         assert's own step — the per-step engines' exact ordering *)
      match cond with
      | Link.L_reg ci ->
          C_line
            (fun ~pre ~fix next ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let v = fr.Thread.regs.(ci) in
                if v == Thread.undef then seg_fault k fix m fr (undef_msg f ci);
                if Value.is_true v then next m th fr
                else begin
                  fr.Thread.idx <- k;
                  if fix <> 0 then m.Machine.step <- m.Machine.step - fix;
                  Machine.set_failure m ~kind ~site_id:None ~iid:(Some iid)
                    ~tid:th.Thread.tid ~msg;
                  m.Machine.step <- m.Machine.step + 1;
                  t_failed
                end
              in
              l)
      | Link.L_const v ->
          if Value.is_true v then
            C_line
              (fun ~pre ~fix:_ next ->
                let l m th fr =
                  if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                  next m th fr
                in
                l)
          else
            C_line
              (fun ~pre ~fix _next ->
                let l m th fr =
                  if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                  fr.Thread.idx <- k;
                  if fix <> 0 then m.Machine.step <- m.Machine.step - fix;
                  Machine.set_failure m ~kind ~site_id:None ~iid:(Some iid)
                    ~tid:th.Thread.tid ~msg;
                  m.Machine.step <- m.Machine.step + 1;
                  t_failed
                in
                l))
  | Link.L_output { fmt; args } ->
      (* the trace sink is off by construction wherever compiled code
         runs *)
      C_self
        (fun next ->
          let l m th fr =
            let text =
              Machine.render_output fmt (Machine.eval_arg_list fr args)
            in
            m.Machine.outputs <- text :: m.Machine.outputs;
            m.Machine.stats.Stats.outputs <- m.Machine.stats.Stats.outputs + 1;
            fr.Thread.idx <- fr.Thread.idx + 1;
            m.Machine.step <- m.Machine.step + 1;
            next m th fr
          in
          l)
  | Link.L_call { ret; fid; fname; args } ->
      if fid < 0 then
        let msg = Format.asprintf "call to unknown %a" Fname.pp fname in
        (* raises with [fr.idx] still at the call, so the fault arm
           attributes the step and the iid to the right instruction; the
           value of [fr.idx] after an unrecovered fault is unobservable *)
        C_halt
          (fun _ _ fr ->
            fr.Thread.idx <- k;
            ignore (Machine.eval_args fr args : Value.t array);
            raise (Machine.Fault msg))
      else
        let callee = lp.Link.lp_funcs.(fid) in
        if Array.length args <> callee.Link.lf_nparams then
          (* arity mismatch: keep [make_frame]'s Invalid_argument, raised
             after argument evaluation exactly as the interpreter does *)
          C_halt
            (fun m th fr ->
              fr.Thread.idx <- k;
              let argv = Machine.eval_args fr args in
              fr.Thread.idx <- k + 1;
              Thread.push_frame th
                (Thread.make_frame callee ~args:argv ~ret_reg:ret);
              m.Machine.step <- m.Machine.step + 1;
              t_refresh)
        else
          (* Arguments are evaluated left-to-right like [eval_args] and
             written through the param-index table like [make_frame]
             (duplicate parameter names keep last-binding-wins) — but
             straight into the new frame's registers, skipping the argv
             array; the common arities are unrolled. The link then
             chains into the callee's entry block when the window budget
             covers it: [callee_cbs] aliases the program array slot that
             [compile] fills in, so mutual recursion needs no patching
             pass. *)
          let nregs = max 1 callee.Link.lf_nregs in
          let entry_ix = callee.Link.lf_entry in
          let entry = callee.Link.lf_blocks.(entry_ix) in
          let callee_cbs = prog.(fid) in
          let nargs = Array.length args in
          if nargs = 0 then
            C_halt
              (fun m th fr ->
                let regs = new_regs nregs in
                fr.Thread.idx <- k + 1;
                let nf =
                  {
                    Thread.func = callee;
                    block = entry;
                    idx = 0;
                    regs;
                    stack_vars = None;
                    ret_reg = ret;
                  }
                in
                th.Thread.stack <- nf :: th.Thread.stack;
                th.Thread.stack_depth <- th.Thread.stack_depth + 1;
                m.Machine.step <- m.Machine.step + 1;
                let cb = callee_cbs.(entry_ix) in
                if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                  cb.cb_chain.(0) m th nf
                else t_refresh)
          else if nargs = 1 then
            let s0 = callee.Link.lf_param_index.(0) in
            (match args.(0) with
            | Link.L_const v0 ->
                C_halt
                  (fun m th fr ->
                    let regs = new_regs nregs in
                    regs.(s0) <- v0;
                    fr.Thread.idx <- k + 1;
                    let nf =
                      {
                        Thread.func = callee;
                        block = entry;
                        idx = 0;
                        regs;
                        stack_vars = None;
                        ret_reg = ret;
                      }
                    in
                    th.Thread.stack <- nf :: th.Thread.stack;
                    th.Thread.stack_depth <- th.Thread.stack_depth + 1;
                    m.Machine.step <- m.Machine.step + 1;
                    let cb = callee_cbs.(entry_ix) in
                    if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                      cb.cb_chain.(0) m th nf
                    else t_refresh)
            | Link.L_reg ia ->
                C_halt
                  (fun m th fr ->
                    let v0 = fr.Thread.regs.(ia) in
                    if v0 == Thread.undef then begin
                      fr.Thread.idx <- k;
                      raise (Machine.Fault (undef_msg f ia))
                    end;
                    let regs = new_regs nregs in
                    regs.(s0) <- v0;
                    fr.Thread.idx <- k + 1;
                    let nf =
                      {
                        Thread.func = callee;
                        block = entry;
                        idx = 0;
                        regs;
                        stack_vars = None;
                        ret_reg = ret;
                      }
                    in
                    th.Thread.stack <- nf :: th.Thread.stack;
                    th.Thread.stack_depth <- th.Thread.stack_depth + 1;
                    m.Machine.step <- m.Machine.step + 1;
                    let cb = callee_cbs.(entry_ix) in
                    if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                      cb.cb_chain.(0) m th nf
                    else t_refresh))
          else if nargs = 2 then
            let s0 = callee.Link.lf_param_index.(0)
            and s1 = callee.Link.lf_param_index.(1) in
            (match (args.(0), args.(1)) with
            | Link.L_reg ia, Link.L_reg ib ->
                (* args are evaluated left-to-right, so arg 0's
                   undefined-register fault wins over arg 1's *)
                C_halt
                  (fun m th fr ->
                    let v0 = fr.Thread.regs.(ia) in
                    if v0 == Thread.undef then begin
                      fr.Thread.idx <- k;
                      raise (Machine.Fault (undef_msg f ia))
                    end;
                    let v1 = fr.Thread.regs.(ib) in
                    if v1 == Thread.undef then begin
                      fr.Thread.idx <- k;
                      raise (Machine.Fault (undef_msg f ib))
                    end;
                    let regs = new_regs nregs in
                    regs.(s0) <- v0;
                    regs.(s1) <- v1;
                    fr.Thread.idx <- k + 1;
                    let nf =
                      {
                        Thread.func = callee;
                        block = entry;
                        idx = 0;
                        regs;
                        stack_vars = None;
                        ret_reg = ret;
                      }
                    in
                    th.Thread.stack <- nf :: th.Thread.stack;
                    th.Thread.stack_depth <- th.Thread.stack_depth + 1;
                    m.Machine.step <- m.Machine.step + 1;
                    let cb = callee_cbs.(entry_ix) in
                    if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                      cb.cb_chain.(0) m th nf
                    else t_refresh)
            | a0, a1 ->
                let g0 = getter f a0 and g1 = getter f a1 in
                C_halt
                  (fun m th fr ->
                    fr.Thread.idx <- k;
                    let regs = new_regs nregs in
                    regs.(s0) <- g0 fr;
                    regs.(s1) <- g1 fr;
                    fr.Thread.idx <- k + 1;
                    let nf =
                      {
                        Thread.func = callee;
                        block = entry;
                        idx = 0;
                        regs;
                        stack_vars = None;
                        ret_reg = ret;
                      }
                    in
                    th.Thread.stack <- nf :: th.Thread.stack;
                    th.Thread.stack_depth <- th.Thread.stack_depth + 1;
                    m.Machine.step <- m.Machine.step + 1;
                    let cb = callee_cbs.(entry_ix) in
                    if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                      cb.cb_chain.(0) m th nf
                    else t_refresh))
          else
            let gets =
              Array.mapi
                (fun k a -> (callee.Link.lf_param_index.(k), getter f a))
                args
            in
            C_halt
              (fun m th fr ->
                fr.Thread.idx <- k;
                let regs = new_regs nregs in
                for j = 0 to Array.length gets - 1 do
                  let slot, g = gets.(j) in
                  regs.(slot) <- g fr
                done;
                fr.Thread.idx <- k + 1;
                let nf =
                  {
                    Thread.func = callee;
                    block = entry;
                    idx = 0;
                    regs;
                    stack_vars = None;
                    ret_reg = ret;
                  }
                in
                th.Thread.stack <- nf :: th.Thread.stack;
                th.Thread.stack_depth <- th.Thread.stack_depth + 1;
                m.Machine.step <- m.Machine.step + 1;
                let cb = callee_cbs.(entry_ix) in
                if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                  cb.cb_chain.(0) m th nf
                else t_refresh)
  | Link.L_nop ->
      C_line
        (fun ~pre ~fix:_ next ->
          let l m th fr =
            if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
            next m th fr
          in
          l)
  | Link.L_checkpoint id ->
      C_self
        (fun next ->
          let l m th fr =
            th.Thread.region_counter <- th.Thread.region_counter + 1;
            fr.Thread.idx <- fr.Thread.idx + 1;
            th.Thread.checkpoint <-
              Some
                {
                  Thread.ck_depth = Thread.depth th;
                  ck_func = fr.Thread.func;
                  ck_block = fr.Thread.block.Link.lb_label;
                  ck_idx = fr.Thread.idx;
                  ck_regs = Array.copy fr.Thread.regs;
                  ck_counter = th.Thread.region_counter;
                  ck_step = m.Machine.step;
                };
            Stats.hit_checkpoint m.Machine.stats id;
            m.Machine.step <- m.Machine.step + 1;
            next m th fr
          in
          l)
  | Link.L_ptr_guard (r, p, ix) ->
      let gp = getter f p and gix = getter f ix in
      C_self
        (fun next ->
          let l m th fr =
            let iv = Machine.as_int (gix fr) in
            let pv = gp fr in
            fr.Thread.regs.(r) <- Value.Bool (Heap.valid m.Machine.heap pv iv);
            fr.Thread.idx <- fr.Thread.idx + 1;
            m.Machine.step <- m.Machine.step + 1;
            next m th fr
          in
          l)

(* Terminators. Jump and branch targets are static, so their links chain
   straight into the target block's compiled code (budget permitting);
   a return chains into the caller's resumption point, found
   dynamically. [L_exit] decides the program's outcome and stays a
   schedulable-op stopper. *)
let compile_term (prog : program) (f : Link.lfunc) (blk : Link.lblock) :
    chain option =
  (* Chains leave [fr.idx] stale inside fused segments, so any fault a
     terminator can raise must park the program point on the terminator
     slot first — moving [fr.idx] on success paths is already part of
     the transfer. *)
  let n = Array.length blk.Link.lb_instrs in
  match blk.Link.lb_term with
  | Link.L_jump t ->
      let tgt = f.Link.lf_blocks.(t) in
      let fcbs = prog.(f.Link.lf_id) in
      Some
        (fun m th fr ->
          fr.Thread.block <- tgt;
          fr.Thread.idx <- 0;
          m.Machine.step <- m.Machine.step + 1;
          let cb = fcbs.(t) in
          if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
            cb.cb_chain.(0) m th fr
          else t_refresh)
  | Link.L_branch (c, t, fl) ->
      let bt = f.Link.lf_blocks.(t) and bf = f.Link.lf_blocks.(fl) in
      let fcbs = prog.(f.Link.lf_id) in
      Some
        (match c with
        | Link.L_reg ic ->
            fun m th fr ->
              let v = fr.Thread.regs.(ic) in
              if v == Thread.undef then begin
                fr.Thread.idx <- n;
                raise (Machine.Fault (undef_msg f ic))
              end;
              let cond = Value.is_true v in
              (match th.Thread.recovering with
              | None -> ()
              | Some _ ->
                  if cond then
                    Machine.note_branch_taken m th fr ~taken_idx:t ~other_idx:fl
                  else
                    Machine.note_branch_taken m th fr ~taken_idx:fl
                      ~other_idx:t);
              if cond then begin
                fr.Thread.block <- bt;
                fr.Thread.idx <- 0;
                m.Machine.step <- m.Machine.step + 1;
                let cb = fcbs.(t) in
                if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                  cb.cb_chain.(0) m th fr
                else t_refresh
              end
              else begin
                fr.Thread.block <- bf;
                fr.Thread.idx <- 0;
                m.Machine.step <- m.Machine.step + 1;
                let cb = fcbs.(fl) in
                if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                  cb.cb_chain.(0) m th fr
                else t_refresh
              end
        | Link.L_const v ->
            (* the taken arm is static: compile only it *)
            let cond = Value.is_true v in
            let taken_idx = if cond then t else fl
            and other_idx = if cond then fl else t in
            let tgt = if cond then bt else bf in
            fun m th fr ->
              (match th.Thread.recovering with
              | None -> ()
              | Some _ ->
                  Machine.note_branch_taken m th fr ~taken_idx ~other_idx);
              fr.Thread.block <- tgt;
              fr.Thread.idx <- 0;
              m.Machine.step <- m.Machine.step + 1;
              let cb = fcbs.(taken_idx) in
              if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
                cb.cb_chain.(0) m th fr
              else t_refresh)
  | Link.L_return v -> (
      (* The popping fast path replicates [Machine.do_return]'s caller
         arm; the last-frame (thread-death) case delegates to it. The
         value-expected fault is compiled inline — [do_return] raises it
         after popping, so raising from here would leave the fault arm
         looking at the caller's frame; emitting the failure directly
         keeps the bookkeeping (close episode, seg-fault record with no
         iid, step count) byte-identical. *)
      match v with
      | None ->
          Some
            (fun m th fr ->
              match th.Thread.stack with
              | _ :: (caller :: _ as rest) -> (
                  th.Thread.stack <- rest;
                  th.Thread.stack_depth <- th.Thread.stack_depth - 1;
                  match fr.Thread.ret_reg with
                  | Some _ ->
                      Machine.close_episode m th;
                      Machine.set_failure m ~kind:Instr.Seg_fault ~site_id:None
                        ~iid:None ~tid:th.Thread.tid
                        ~msg:"function returned no value but one was expected";
                      m.Machine.step <- m.Machine.step + 1;
                      t_failed
                  | None ->
                      m.Machine.step <- m.Machine.step + 1;
                      let cb =
                        prog.(caller.Thread.func.Link.lf_id).(caller.Thread
                                                                .block
                                                                .Link
                                                                .lb_index)
                      in
                      let i = caller.Thread.idx in
                      if m.Machine.step + cb.cb_need.(i) <= m.Machine.wbound
                      then cb.cb_chain.(i) m th caller
                      else t_refresh)
              | _ -> (
                  Machine.do_return m th None;
                  m.Machine.step <- m.Machine.step + 1;
                  match th.Thread.status with
                  | Thread.Done -> t_end
                  | _ -> t_refresh))
      | Some rv -> (
          match rv with
          | Link.L_reg ia ->
              Some
                (fun m th fr ->
                  let value = fr.Thread.regs.(ia) in
                  if value == Thread.undef then begin
                    fr.Thread.idx <- n;
                    raise (Machine.Fault (undef_msg f ia))
                  end;
                  match th.Thread.stack with
                  | _ :: (caller :: _ as rest) ->
                      th.Thread.stack <- rest;
                      th.Thread.stack_depth <- th.Thread.stack_depth - 1;
                      (match fr.Thread.ret_reg with
                      | None -> ()
                      | Some r -> caller.Thread.regs.(r) <- value);
                      m.Machine.step <- m.Machine.step + 1;
                      let cb =
                        prog.(caller.Thread.func.Link.lf_id).(caller.Thread
                                                                .block
                                                                .Link
                                                                .lb_index)
                      in
                      let i = caller.Thread.idx in
                      if m.Machine.step + cb.cb_need.(i) <= m.Machine.wbound
                      then cb.cb_chain.(i) m th caller
                      else t_refresh
                  | _ -> (
                      Machine.do_return m th (Some value);
                      m.Machine.step <- m.Machine.step + 1;
                      match th.Thread.status with
                      | Thread.Done -> t_end
                      | _ -> t_refresh))
          | Link.L_const value ->
              Some
                (fun m th fr ->
                  match th.Thread.stack with
                  | _ :: (caller :: _ as rest) ->
                      th.Thread.stack <- rest;
                      th.Thread.stack_depth <- th.Thread.stack_depth - 1;
                      (match fr.Thread.ret_reg with
                      | None -> ()
                      | Some r -> caller.Thread.regs.(r) <- value);
                      m.Machine.step <- m.Machine.step + 1;
                      let cb =
                        prog.(caller.Thread.func.Link.lf_id).(caller.Thread
                                                                .block
                                                                .Link
                                                                .lb_index)
                      in
                      let i = caller.Thread.idx in
                      if m.Machine.step + cb.cb_need.(i) <= m.Machine.wbound
                      then cb.cb_chain.(i) m th caller
                      else t_refresh
                  | _ -> (
                      Machine.do_return m th (Some value);
                      m.Machine.step <- m.Machine.step + 1;
                      match th.Thread.status with
                      | Thread.Done -> t_end
                      | _ -> t_refresh))))
  | Link.L_exit -> None

(* Compare-and-branch fusion: a block whose last instruction is an
   integer comparison feeding straight into the branch condition — the
   universal loop-guard shape — executes both in one closure, skipping
   the inter-link dispatch, the condition register's re-load and its
   truthiness test. The comparison result is still written to its
   register (it is observable), operand faults still park the program
   point on the comparison with the batch rolled back, and the
   single-step form stays unfused so strict single-stepping retires
   exactly one instruction. The comparison's step rides the segment
   batch; the branch counts its own, exactly as unfused. *)
let fuse_cmp_branch (prog : program) (f : Link.lfunc) (blk : Link.lblock)
    (k : int) : (pre:int -> fix:int -> chain) option =
  match (blk.Link.lb_instrs.(k).Link.li_op, blk.Link.lb_term) with
  | ( Link.L_binop (r, ((Instr.Lt | Instr.Le | Instr.Gt | Instr.Ge) as op), a, b),
      Link.L_branch (Link.L_reg rc, t, fl) )
    when rc = r ->
      let bt = f.Link.lf_blocks.(t) and bf = f.Link.lf_blocks.(fl) in
      let fcbs = prog.(f.Link.lf_id) in
      (* the op is a compile-time constant per closure, so the dispatch
         below is a perfectly predicted jump, not an indirect call *)
      let finish m th (fr : Thread.frame) cond =
        fr.Thread.regs.(r) <- (if cond then vtrue else vfalse);
        (match th.Thread.recovering with
        | None -> ()
        | Some _ ->
            if cond then
              Machine.note_branch_taken m th fr ~taken_idx:t ~other_idx:fl
            else Machine.note_branch_taken m th fr ~taken_idx:fl ~other_idx:t);
        if cond then begin
          fr.Thread.block <- bt;
          fr.Thread.idx <- 0;
          m.Machine.step <- m.Machine.step + 1;
          let cb = fcbs.(t) in
          if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
            cb.cb_chain.(0) m th fr
          else t_refresh
        end
        else begin
          fr.Thread.block <- bf;
          fr.Thread.idx <- 0;
          m.Machine.step <- m.Machine.step + 1;
          let cb = fcbs.(fl) in
          if m.Machine.step + cb.cb_need.(0) <= m.Machine.wbound then
            cb.cb_chain.(0) m th fr
          else t_refresh
        end
      in
      let icmp x y =
        match op with
        | Instr.Lt -> x < y
        | Instr.Le -> x <= y
        | Instr.Gt -> x > y
        | _ -> x >= y
      in
      (match (a, b) with
      | Link.L_reg ia, Link.L_const (Value.Int y as vb) ->
          Some
            (fun ~pre ~fix ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                let cond =
                  match va with
                  | Value.Int x -> icmp x y
                  | _ -> Value.is_true (seg_binop k fix op m fr va vb)
                in
                finish m th fr cond
              in
              l)
      | Link.L_reg ia, Link.L_reg ib ->
          Some
            (fun ~pre ~fix ->
              let l m th fr =
                if pre <> 0 then m.Machine.step <- m.Machine.step + pre;
                let vb = fr.Thread.regs.(ib) in
                if vb == Thread.undef then seg_fault k fix m fr (undef_msg f ib);
                let va = fr.Thread.regs.(ia) in
                if va == Thread.undef then seg_fault k fix m fr (undef_msg f ia);
                let cond =
                  match (va, vb) with
                  | Value.Int x, Value.Int y -> icmp x y
                  | _ -> Value.is_true (seg_binop k fix op m fr va vb)
                in
                finish m th fr cond
              in
              l)
      | _ -> None)
  | _ -> None

let compile_block (prog : program) (lp : Link.program) (f : Link.lfunc)
    (blk : Link.lblock) : cblock =
  let instrs = blk.Link.lb_instrs in
  let n = Array.length instrs in
  let comps = Array.init n (fun k -> compile_comp prog f lp k instrs.(k)) in
  (* [ends.(k)]: index of the segment end from [k] — the first slot at or
     after [k] that is not [C_line]. The run [k .. ends.(k) - 1] is the
     batch a segment entry at [k] pre-counts. *)
  let ends = Array.make (n + 1) n in
  for k = n - 1 downto 0 do
    ends.(k) <- (match comps.(k) with C_line _ -> ends.(k + 1) | _ -> k)
  done;
  let chain = Array.make (n + 1) halt in
  let one = Array.make (n + 1) halt in
  (* [inner.(k)]: the chain form entered from inside a segment — batch
     already counted, so no pre-add. Outside segments it coincides with
     [chain.(k)]. *)
  let inner = Array.make (n + 1) halt in
  let need = Array.make (n + 1) 1 in
  let sched = Array.make (n + 1) false in
  (match compile_term prog f blk with
  | None ->
      sched.(n) <- true;
      let stop = stop_at n in
      chain.(n) <- stop;
      one.(n) <- stop
  | Some l ->
      chain.(n) <- l;
      one.(n) <- l);
  inner.(n) <- chain.(n);
  (* Chains are built back to front so each link captures its already-
     built successor: tails are shared, [O(n)] closures per block. *)
  for k = n - 1 downto 0 do
    let i = instrs.(k) in
    match comps.(k) with
    | C_sched ->
        sched.(k) <- true;
        let stop = stop_at k in
        chain.(k) <- stop;
        one.(k) <- stop;
        inner.(k) <- stop
    | C_line mk ->
        (* never destroying: the destroying preamble reads [m.step],
           which is ahead of retirement inside a segment *)
        assert (not i.Link.li_destroying);
        let fx = ends.(k) - k in
        (match if k = n - 1 then fuse_cmp_branch prog f blk k else None with
        | Some fmk ->
            inner.(k) <- fmk ~pre:0 ~fix:fx;
            chain.(k) <- fmk ~pre:fx ~fix:fx
        | None ->
            inner.(k) <- mk ~pre:0 ~fix:fx inner.(k + 1);
            chain.(k) <- mk ~pre:fx ~fix:fx inner.(k + 1));
        one.(k) <- mk ~pre:0 ~fix:0 (one_halt (k + 1));
        need.(k) <- need.(k + 1) + 1
    | C_self mk ->
        let c = self_idx k (destroying_link i (mk chain.(k + 1))) in
        chain.(k) <- c;
        inner.(k) <- c;
        one.(k) <- self_idx k (destroying_link i (mk halt));
        need.(k) <- need.(k + 1) + 1
    | C_halt l ->
        let l = destroying_link i l in
        chain.(k) <- l;
        one.(k) <- l;
        inner.(k) <- l
        (* need stays 1: the link re-gates on [m.wbound] before chaining
           past its own step *)
  done;
  {
    cb_chain = chain;
    cb_one = one;
    cb_iids =
      Array.map (fun (j : Link.linstr) -> j.Link.li_iid) blk.Link.lb_instrs;
    cb_need = need;
    cb_sched = sched;
  }

let compile_uncached (lp : Link.program) : program =
  (* Two phases so transfer links can capture their target function's
     cblock array before it is filled: the per-function arrays are
     allocated up front and populated in place, which handles (mutual)
     recursion with no runtime indirection beyond one array load. *)
  let prog =
    Array.map
      (fun (f : Link.lfunc) ->
        Array.make (Array.length f.Link.lf_blocks) dummy_cblock)
      lp.Link.lp_funcs
  in
  Array.iteri
    (fun fi (f : Link.lfunc) ->
      let fcbs = prog.(fi) in
      Array.iteri
        (fun bi blk -> fcbs.(bi) <- compile_block prog lp f blk)
        f.Link.lf_blocks)
    lp.Link.lp_funcs;
  prog

(* The compiled code is machine-independent (closures take the machine as
   an argument) and never mutated after the two-phase fill, so machines
   over the same linked image — which [Link]'s own memo already shares —
   reuse one code image: a code cache, keyed by physical identity. As
   with [Link.memo], the [Atomic.t] makes concurrent compiles safe — a
   racing publish can drop an entry (costing a recompile), never corrupt
   one. *)
let memo : (Link.program * program) list Atomic.t = Atomic.make []
let memo_max = 256

let truncate n l =
  if List.length l <= n then l else List.filteri (fun i _ -> i < n) l

let compile (lp : Link.program) : program =
  match List.find_opt (fun (lp', _) -> lp' == lp) (Atomic.get memo) with
  | Some (_, code) -> code
  | None ->
      let code = compile_uncached lp in
      Atomic.set memo (truncate memo_max ((lp, code) :: Atomic.get memo));
      code
