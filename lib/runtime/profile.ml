(* The engine-side half of the deterministic cost profiler.

   This module is deliberately tiny: it only defines the *probe* record a
   machine calls into, mirroring the [Trace.sink] opt-in design — the
   machine holds a [probe option] and pays one [match] per scheduler step
   when no profiler is installed. The accumulator that gives the callbacks
   meaning (useful/checkpoint/wasted attribution, flamegraph export) lives
   upstack in [Conair_obs.Prof]; keeping the probe here breaks what would
   otherwise be a runtime->obs dependency cycle.

   All quantities are in *virtual time* (scheduler steps), so a profile is
   exactly as deterministic as the execution itself: same program, same
   config, same seed => byte-identical profile, from either engine.

   Context is passed as *names* (function qualified names, block labels),
   not dense link-time indices: the reference interpreter has no [Link]
   pass, and the cross-engine differential test demands both engines feed
   byte-identical keys. The fast engine precomputes these strings at link
   time ([Link.lf_qname], [Link.lb_label_name]) so the hook does no
   formatting on the hot path. *)

(** What kind of step the engine is about to execute: an ordinary
    instruction/terminator, or a [Checkpoint] pseudo-instruction. The
    distinction matters to attribution — steps retired before a fresh
    checkpoint can never be rolled back, and checkpointing itself is
    ConAir's proactive cost (§5 "checkpointing overhead"). *)
type step_class = Normal | Checkpoint

type probe = {
  p_step :
    step:int ->
    tid:int ->
    stack:string list ->
    block:string ->
    cls:step_class ->
    unit;
      (** About to execute one step of thread [tid] at virtual time
          [step]. [stack] is the call stack as function names,
          innermost frame first; [block] is the current block's label. *)
  p_rollback : step:int -> tid:int -> site_id:int -> unit;
      (** Thread [tid] is rolling back to its checkpoint; every step it
          retired since that checkpoint is now wasted work chargeable to
          failure site [site_id]. *)
  p_idle : step:int -> unit;
      (** A scheduler step in which no thread was eligible and virtual
          time simply passed. *)
}
