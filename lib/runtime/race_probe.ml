(* The engine-side half of the dynamic race/deadlock detector.

   Like [Profile], this module is deliberately tiny: it only defines the
   *probe* record a machine calls into. The machine holds a
   [probe option] and pays one [match] per memory/synchronization
   operation when no detector is installed; the analyses that give the
   events meaning (vector-clock happens-before, lockset, lock-order
   graph) live upstack in [Conair_race], which keeps the runtime free of
   a dependency on the detector.

   Events carry *names* (function qualified names, block label names,
   lock names), never link-time indices: the reference interpreter has
   no [Link] pass, and the cross-engine differential test demands both
   engines feed byte-identical events. Locksets are passed sorted so the
   stream does not depend on hash-table iteration order.

   Addresses are classified, not flat: a detector needs to know that a
   [Free] conflicts with every cell of the freed block, and that stack
   slots are thread-private. Virtual time ([step]) makes the event
   stream — and therefore any report derived from it — exactly as
   deterministic as the execution itself. *)

(** The address classes of the Mir memory model. *)
type addr =
  | A_global of string  (** a named global *)
  | A_slot of int * string
      (** a stack slot, keyed by owning thread: thread-private by
          construction, included so the event schema covers every access *)
  | A_cell of int * int  (** one heap cell: block id, absolute offset *)
  | A_block of int
      (** a whole heap block — emitted by [Free], which conflicts with
          every access to any cell of the block *)

type kind = Read | Write

type probe = {
  rp_access :
    step:int ->
    tid:int ->
    iid:int ->
    stack:string list ->
    block:string ->
    kind:kind ->
    addr:addr ->
    locks:string list ->
    unit;
      (** Thread [tid] is about to access [addr]. Emitted after the
          operands are evaluated and *before* the memory operation, so
          attempted accesses that fault (use-after-free, out-of-bounds)
          are still seen. [stack]: call stack as function names,
          innermost first. [block]: current block label. [locks]: the
          lockset held by [tid], sorted. *)
  rp_acquire :
    step:int -> tid:int -> iid:int -> lock:string -> locks:string list -> unit;
      (** [tid] successfully acquired [lock]. [locks] is the held set
          *after* the acquisition (it includes [lock]), sorted. *)
  rp_request :
    step:int -> tid:int -> iid:int -> lock:string -> locks:string list -> unit;
      (** [tid] wants [lock] but found it held and is blocking — emitted
          once per blocking episode, at the transition to blocked (the
          same guard as the [Ev_block] trace event). [locks] is the held
          set, sorted; a request for a lock in its own held set is a
          self-deadlock. Blocked acquisitions matter: in a hanging run
          the deadlock cycle exists only among *requests*, never among
          completed acquisitions. *)
  rp_release : step:int -> tid:int -> lock:string -> unit;
      (** [tid] released [lock] — by [Unlock] or by the recovery
          compensation's forced release (the detector must see both, or
          its lockset tracking drifts from the machine's). *)
  rp_spawn : step:int -> parent:int -> child:int -> unit;
      (** [parent] spawned [child]: a happens-before edge. *)
  rp_join : step:int -> tid:int -> joined:int -> unit;
      (** [tid]'s join on [joined] completed: a happens-before edge from
          everything [joined] did. *)
  rp_wake : step:int -> waker:int -> woken:int -> unit;
      (** [waker]'s notify woke [woken] from its wait: a happens-before
          edge. *)
}
