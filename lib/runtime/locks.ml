(* Named mutexes. Non-reentrant, like [pthread_mutex_t]: a thread that
   re-acquires a lock it already holds blocks itself forever. *)

type state = { mutable owner : int option; mutable acquisitions : int }
type t = (string, state) Hashtbl.t

let create names =
  let t = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace t n { owner = None; acquisitions = 0 }) names;
  t

(* Locks may also be created dynamically by first use; real programs
   initialize mutexes at run time too. *)
let get (t : t) name =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None ->
      let s = { owner = None; acquisitions = 0 } in
      Hashtbl.replace t name s;
      s

let is_free t name = (get t name).owner = None
let owner t name = (get t name).owner

(** Acquire [name] for [tid]; false if held (including by [tid] itself). *)
let try_acquire t name ~tid =
  let s = get t name in
  match s.owner with
  | None ->
      s.owner <- Some tid;
      s.acquisitions <- s.acquisitions + 1;
      true
  | Some _ -> false

(** Release [name]; error if [tid] is not the owner. *)
let release t name ~tid =
  let s = get t name in
  match s.owner with
  | Some o when o = tid ->
      s.owner <- None;
      Ok ()
  | Some _ -> Error "unlock of a lock held by another thread"
  | None -> Error "unlock of a lock that is not held"

(** Unconditional release used by the recovery compensation; true if the
    lock was indeed held by [tid]. *)
let force_release t name ~tid =
  let s = get t name in
  match s.owner with
  | Some o when o = tid ->
      s.owner <- None;
      true
  | Some _ | None -> false

(** The locks currently held by [tid], sorted by name — the lockset the
    race-detection probe attaches to events. Sorting makes the result
    independent of hash-table iteration order, so both engines report
    byte-identical locksets. *)
let held_by (t : t) ~tid =
  Hashtbl.fold
    (fun name s acc -> if s.owner = Some tid then name :: acc else acc)
    t []
  |> List.sort compare

let snapshot (t : t) : t =
  let c = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter
    (fun n s ->
      Hashtbl.replace c n { owner = s.owner; acquisitions = s.acquisitions })
    t;
  c
