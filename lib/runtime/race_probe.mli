(** The engine-side probe of the dynamic race/deadlock detector.

    A machine holds a [probe option] (see [Machine.set_race] /
    [Ref_machine.set_race]) and invokes the callbacks as it executes —
    one [match] per memory/synchronization operation when off, mirroring
    [Trace.sink] and [Profile]. The analyses (vector-clock
    happens-before, Eraser-style lockset, lock-order graph) live in
    [Conair_race]; this module only defines the callback record so the
    runtime need not depend on the detector.

    Events carry names (function qnames, block labels, lock names) and
    sorted locksets, never indices or hash order, so the fast and
    reference engines feed byte-identical streams; everything is in
    virtual time, so reports are exactly as deterministic as the
    execution itself. *)

(** The address classes of the Mir memory model. *)
type addr =
  | A_global of string  (** a named global *)
  | A_slot of int * string  (** a stack slot, keyed by owning thread *)
  | A_cell of int * int  (** one heap cell: block id, absolute offset *)
  | A_block of int  (** a whole heap block, as freed by [Free] *)

type kind = Read | Write

type probe = {
  rp_access :
    step:int ->
    tid:int ->
    iid:int ->
    stack:string list ->
    block:string ->
    kind:kind ->
    addr:addr ->
    locks:string list ->
    unit;
      (** An attempted memory access, emitted before the memory
          operation (faulting accesses are still seen). [stack] is
          innermost-first function names; [locks] the held lockset,
          sorted. *)
  rp_acquire :
    step:int -> tid:int -> iid:int -> lock:string -> locks:string list -> unit;
      (** Successful acquisition; [locks] includes [lock]. *)
  rp_request :
    step:int -> tid:int -> iid:int -> lock:string -> locks:string list -> unit;
      (** The thread found [lock] held and is blocking — emitted once
          per blocking episode, at the transition to blocked. *)
  rp_release : step:int -> tid:int -> lock:string -> unit;
      (** Release by [Unlock] or by the recovery compensation. *)
  rp_spawn : step:int -> parent:int -> child:int -> unit;
  rp_join : step:int -> tid:int -> joined:int -> unit;
  rp_wake : step:int -> waker:int -> woken:int -> unit;
}
