(* A structured execution trace: what the scheduler ran and what the
   recovery engine did, as typed events. Off by default (tracing costs
   memory); when a sink is installed, the machine reports scheduling,
   blocking, failures, checkpoints, rollbacks and compensations, giving
   tests something to assert order on and users an audit trail of a
   recovery ("which thread rolled back, how often, what was released"). *)

type event =
  | Ev_schedule of { step : int; tid : int }
  | Ev_block of { step : int; tid : int; lock : string }
  | Ev_wake of { step : int; tid : int }
  | Ev_spawn of { step : int; parent : int; child : int }
  | Ev_thread_done of { step : int; tid : int }
  | Ev_output of { step : int; tid : int; text : string }
  | Ev_checkpoint of { step : int; tid : int; ckpt_id : int }
  | Ev_failure_detected of {
      step : int;
      tid : int;
      site_id : int;
      kind : Conair_ir.Instr.failure_kind;
    }
  | Ev_rollback of { step : int; tid : int; site_id : int; retry : int }
  | Ev_compensate_lock of { step : int; tid : int; lock : string }
  | Ev_compensate_block of { step : int; tid : int; block : int }
  | Ev_recovered of { step : int; tid : int; site_id : int }
  | Ev_fail_stop of { step : int; tid : int; site_id : int }

let pp_event ppf = function
  | Ev_schedule { step; tid } -> Format.fprintf ppf "[%d] run t%d" step tid
  | Ev_block { step; tid; lock } ->
      Format.fprintf ppf "[%d] t%d blocks on %s" step tid lock
  | Ev_wake { step; tid } -> Format.fprintf ppf "[%d] t%d wakes" step tid
  | Ev_spawn { step; parent; child } ->
      Format.fprintf ppf "[%d] t%d spawns t%d" step parent child
  | Ev_thread_done { step; tid } ->
      Format.fprintf ppf "[%d] t%d done" step tid
  | Ev_output { step; tid; text } ->
      Format.fprintf ppf "[%d] t%d outputs %S" step tid text
  | Ev_checkpoint { step; tid; ckpt_id } ->
      Format.fprintf ppf "[%d] t%d checkpoint #%d" step tid ckpt_id
  | Ev_failure_detected { step; tid; site_id; kind } ->
      Format.fprintf ppf "[%d] t%d detects %a at site %d" step tid
        Conair_ir.Instr.pp_failure_kind kind site_id
  | Ev_rollback { step; tid; site_id; retry } ->
      Format.fprintf ppf "[%d] t%d rolls back for site %d (retry %d)" step
        tid site_id retry
  | Ev_compensate_lock { step; tid; lock } ->
      Format.fprintf ppf "[%d] t%d compensates: releases %s" step tid lock
  | Ev_compensate_block { step; tid; block } ->
      Format.fprintf ppf "[%d] t%d compensates: frees block %d" step tid block
  | Ev_recovered { step; tid; site_id } ->
      Format.fprintf ppf "[%d] t%d recovered from site %d" step tid site_id
  | Ev_fail_stop { step; tid; site_id } ->
      Format.fprintf ppf "[%d] t%d fail-stops at site %d" step tid site_id

(** A trace sink; [record] receives the full event stream. A sink can
    retain events in memory ([store], the default), forward each event to
    a listener as it happens ([emit] — the streaming-telemetry hook), or
    both. Machines never look inside: installing no sink keeps tracing
    entirely free. *)
type sink = {
  mutable events : event list;  (** newest first; empty when not storing *)
  emit : (event -> unit) option;
  store : bool;
  mutable count : int;
}

let create ?emit ?(store = true) () = { events = []; emit; store; count = 0 }

let record sink ev =
  sink.count <- sink.count + 1;
  if sink.store then sink.events <- ev :: sink.events;
  match sink.emit with None -> () | Some f -> f ev

let events sink = List.rev sink.events
let length sink = sink.count

let pp ppf sink =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list pp_event)
    (events sink)

(* Scheduling events dominate traces; the recovery summary keeps only the
   story a user cares about. *)
let recovery_events sink =
  List.filter
    (function
      | Ev_failure_detected _ | Ev_rollback _ | Ev_compensate_lock _
      | Ev_compensate_block _ | Ev_recovered _ | Ev_fail_stop _
      | Ev_checkpoint _ ->
          true
      | Ev_schedule _ | Ev_block _ | Ev_wake _ | Ev_spawn _
      | Ev_thread_done _ | Ev_output _ ->
          false)
    (events sink)

let pp_recovery_summary ppf sink =
  let evs =
    List.filter
      (function Ev_checkpoint _ -> false | _ -> true)
      (recovery_events sink)
  in
  if evs = [] then Format.fprintf ppf "no recovery activity"
  else
    Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_event) evs
