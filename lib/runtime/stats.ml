(* Execution statistics: the raw material of Tables 3, 5, 6 and 7. *)

type episode = {
  ep_site_id : int;
  ep_tid : int;
  ep_start : int;  (** step of the first rollback for this failure *)
  ep_end : int;  (** step at which the thread passed the site *)
  ep_retries : int;
}

let episode_duration e = e.ep_end - e.ep_start

type t = {
  mutable steps : int;  (** scheduler steps, including idle ticks *)
  mutable instrs : int;  (** instructions actually executed *)
  mutable idle : int;
  mutable checkpoints : int;  (** dynamic reexecution points (Table 5) *)
  mutable rollbacks : int;
  mutable compensated_locks : int;
  mutable compensated_blocks : int;
  mutable episodes : episode list;  (** completed recovery episodes, newest first *)
  mutable tracecheck_violations : int;
  mutable outputs : int;
  ckpt_hits : (int, int) Hashtbl.t;
      (** executions per checkpoint id — the per-family dynamic
          reexecution-point counts of Table 6 *)
  iid_hits : (int, int) Hashtbl.t;
      (** executions per instruction id, populated only under
          [Machine.config.profile_sites] — the ConSeq-style profile *)
}

let create () =
  {
    steps = 0;
    instrs = 0;
    idle = 0;
    checkpoints = 0;
    rollbacks = 0;
    compensated_locks = 0;
    compensated_blocks = 0;
    episodes = [];
    tracecheck_violations = 0;
    outputs = 0;
    ckpt_hits = Hashtbl.create 16;
    iid_hits = Hashtbl.create 64;
  }

let hit_checkpoint t id =
  t.checkpoints <- t.checkpoints + 1;
  Hashtbl.replace t.ckpt_hits id
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.ckpt_hits id))

let ckpt_hits_of t id = Option.value ~default:0 (Hashtbl.find_opt t.ckpt_hits id)

let hit_iid t iid =
  Hashtbl.replace t.iid_hits iid
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.iid_hits iid))

let iid_hits_of t iid = Option.value ~default:0 (Hashtbl.find_opt t.iid_hits iid)

(* [episodes] is an accumulation list (newest first); anything user-facing
   — pretty-printing, reports, spans — should read it in execution order. *)
let episodes_chronological t = List.rev t.episodes

let total_retries t =
  List.fold_left (fun n e -> n + e.ep_retries) 0 t.episodes

(** Duration of the longest recovery episode — the "Recovery Time" column
    of Table 7 (in virtual steps). *)
let max_recovery_time t =
  List.fold_left (fun n e -> max n (episode_duration e)) 0 t.episodes

(** Mean recovery-episode duration in virtual steps; [0.] with no
    episodes. The overhead harness reports max and mean side by side. *)
let mean_recovery_time t =
  match t.episodes with
  | [] -> 0.
  | eps ->
      let total = List.fold_left (fun n e -> n + episode_duration e) 0 eps in
      float_of_int total /. float_of_int (List.length eps)

let pp ppf t =
  Format.fprintf ppf
    "steps=%d instrs=%d idle=%d checkpoints=%d rollbacks=%d episodes=%d \
     comp-locks=%d comp-blocks=%d tracecheck-violations=%d"
    t.steps t.instrs t.idle t.checkpoints t.rollbacks (List.length t.episodes)
    t.compensated_locks t.compensated_blocks t.tracecheck_violations

let pp_episode ppf e =
  Format.fprintf ppf "site %d on t%d: steps %d..%d (%d steps, %d retries)"
    e.ep_site_id e.ep_tid e.ep_start e.ep_end (episode_duration e) e.ep_retries

let pp_episodes ppf t =
  match episodes_chronological t with
  | [] -> Format.fprintf ppf "no recovery episodes"
  | eps ->
      Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_episode) eps
