(** The Mir interpreter with the ConAir recovery runtime built in.

    [create] pre-resolves the program once through [Link] — register
    names interned to dense indices (frames hold a flat [Value.t array]),
    labels and call targets resolved to array indices, fail-arm labels
    annotated onto their blocks — and the step loop runs without any name
    lookups; the scheduler keeps a dense live-thread array instead of
    folding the thread table every step.

    One scheduler step executes one instruction (or terminator) of one
    thread. The recovery pseudo-instructions are interpreted here:
    [Checkpoint] saves the register image into the thread's single
    checkpoint slot (an [Array.copy]), [Try_recover] compensates
    (releases locks / frees blocks acquired in the current region, §4.1)
    and rolls back within a per-site retry budget, [Timed_lock] blocks
    with a step timeout. Unhardened programs fail where hardened ones
    recover: asserts stop the program, invalid dereferences are
    segmentation faults, and a configuration with every live thread
    blocked is a hang.

    Semantics are bit-for-bit those of the original map-based
    interpreter, kept as [Ref_machine]: same outcomes, outputs, step
    counts, traces, statistics and random-stream consumption. *)

open Conair_ir
module Label = Ident.Label

(** How a deadlock is noticed at a hardened lock site (§3.1.1: "ConAir
    can work with any deadlock-detection mechanism"): lock timeouts (the
    paper's prototype) or wait-for-graph cycle detection (recovery starts
    the moment the cycle closes). *)
type deadlock_detection = Timeout_based | Wait_graph

type config = {
  policy : Sched.policy;
  fuel : int;  (** scheduler-step budget before giving up *)
  max_retries : int;  (** per-site retry budget (paper default: 10^6) *)
  deadlock_detection : deadlock_detection;
  deadlock_backoff : int;
      (** max random sleep after a deadlock rollback (livelock avoidance) *)
  verify_rollbacks : bool;
      (** check at every rollback that no dynamically-destroying
          instruction executed since the checkpoint — the static
          analysis' safety invariant *)
  perturb_timing : bool;
      (** randomize sleep durations and stagger thread startup — the
          Rx-style environment change the baselines use on reexecution;
          never used by ConAir itself *)
  spawn_jitter : int;
      (** max random startup delay for spawned threads under
          [perturb_timing] *)
  profile_sites : bool;
      (** record per-instruction execution counts (ConSeq-style
          well-tested-site profiling, §3.4); off by default *)
}

val default_config : config

(** Metadata from the hardening pass: fail-arm labels per site, used to
    close recovery episodes when a site is finally passed. [fail_index]
    is the same mapping pre-resolved by [Harden.apply], consumed directly
    by the link pass. *)
type meta = {
  fail_blocks : (Label.t * int) list;
  fail_index : (string, int) Hashtbl.t;
}

val meta_of_harden : Conair_transform.Harden.t -> meta

type t = {
  prog : Program.t;
  linked : Link.program;  (** [prog], pre-resolved once at [create] *)
  config : config;
  meta : meta option;
  globals : (string, Value.t) Hashtbl.t;
  heap : Heap.t;
  locks : Locks.t;
  threads : (int, Thread.t) Hashtbl.t;
  mutable next_tid : int;
  mutable step : int;  (** virtual time *)
  mutable outputs : string list;  (** newest first *)
  stats : Stats.t;
  sched : Sched.t;
  mutable outcome : Outcome.t option;
  mutable trace : Trace.sink option;
  mutable prof : Profile.probe option;
      (** cost-profiler probe; like [trace], one [match] per step when off *)
  mutable race : Race_probe.probe option;
      (** race-detector probe; one [match] per memory/sync op when off *)
  mutable flight : Flight_ring.t option;
      (** flight-recorder ring; one [match] per decision / sync op when
          off, and the one hook that keeps the block engine on its
          compiled window fast path *)
  mutable live : Thread.t array;
      (** slots [0, live_n): the live threads, ascending tid — maintained
          at spawn and death instead of folded from [threads] per step *)
  mutable live_n : int;
  mutable ready : int array;  (** scratch: eligible indices into [live] *)
  mutable wbound : int;
      (** the running window's step budget, consulted by compiled
          control-transfer links ([Compile]) before chaining into their
          target block; owned by [Block_machine], unused here *)
}

val create :
  ?config:config -> ?meta:meta -> ?hooks:Hooks.bundle -> Program.t -> t
(** Link the program and return a machine with the main thread ready to
    run. [hooks] attaches the run's observation hooks (trace sink,
    profiler probe, race probe, flight ring, sched tap/feed) at
    construction; they are private to this machine, so concurrent
    in-process runs never share hook state. All hooks are off by default
    — with none installed the engine pays one [match] per step. *)

val outputs : t -> string list
(** In emission order. *)

val stats : t -> Stats.t
val thread : t -> int -> Thread.t
val live_threads : t -> int list

val thread_summaries : t -> (int * string * string list) list
(** Post-mortem view for diagnostic bundles: every thread ever spawned
    (finished ones included), ascending tid, as
    [(tid, status, held locks)] with the status rendered to an
    engine-independent string ([runnable], [sleeping:N],
    [blocked_lock:NAME], [blocked_event:NAME], [blocked_join:TID],
    [done], [failed]). *)

val step : t -> bool
(** Run one scheduler step; [false] once the program has finished. *)

val run : t -> Outcome.t
(** Run to completion or until the fuel runs out. *)

val run_program : ?config:config -> ?meta:meta -> Program.t -> t * Outcome.t

val hooks : t -> Hooks.target
(** The machine's six hook slots (trace, profile, race, flight, sched
    tap/feed), bundled for [Hooks.install] — the escape hatch for
    self-referential hooks — and the [Hooks.with_installed]
    compatibility shim. *)

(** {1 Engine internals}

    The execution helpers, exported for [Compile]/[Block_machine]: the
    block-compiled engine reuses [Machine]'s own evaluation, failure and
    recovery paths verbatim so the two engines cannot drift. Not intended
    for other callers. *)

exception Fault of string
(** An unrecovered runtime fault of the current thread. *)

val eval_reg : Thread.frame -> int -> Value.t
val eval : Thread.frame -> Link.rarg -> Value.t
val eval_args : Thread.frame -> Link.rarg array -> Value.t array
val eval_arg_list : Thread.frame -> Link.rarg array -> Value.t list
val as_int : Value.t -> int
val as_mutex : Value.t -> string
val eval_binop : Instr.binop -> Value.t -> Value.t -> Value.t
val eval_unop : Instr.unop -> Value.t -> Value.t
val render_output : string -> Value.t list -> string

val set_failure :
  t ->
  kind:Instr.failure_kind ->
  site_id:int option ->
  iid:int option ->
  tid:int ->
  msg:string ->
  unit

val note_branch_taken :
  t -> Thread.t -> Thread.frame -> taken_idx:int -> other_idx:int -> unit

val close_episode : t -> Thread.t -> unit
val do_return : t -> Thread.t -> Value.t option -> unit
val eligible : t -> Thread.t -> bool

val run_thread_step : t -> Thread.t -> unit
(** Execute one instruction (or terminator) of [th], including the
    sleeper wake and all probe emission — everything [step] does except
    eligibility scanning, the scheduling decision and the step-counter
    bump. *)

(** {1 Whole-machine snapshots}

    For the Fig 4 right-end baselines only — ConAir itself never copies
    memory state. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Restore state but not time: virtual time is wall-clock and keeps
    moving forward, so sleep deadlines captured in the snapshot retain
    their meaning across restores. A snapshot can be restored any number
    of times. *)

val reseed : ?perturb:bool -> t -> Sched.policy -> t
(** Swap the scheduling policy (and optionally enable timing
    perturbation) — how baselines explore a different interleaving after
    a rollback or restart. *)
