(** The reference Mir interpreter: the original map-based implementation,
    kept as a semantic oracle for the pre-resolved engine in [Machine].

    It interprets the source [Program.t] directly (persistent register
    maps, label lookups, a thread-table fold per step) and must agree
    bit-for-bit with [Machine] — same outcomes, outputs, step counts,
    traces and statistics on every program and every scheduling policy.
    The differential test enforces this across the bugbench catalog; the
    bench's interp mode measures the speedup of [Machine] over it.

    Deliberately slow — do not optimize. *)

open Conair_ir

type config = Machine.config
type meta = Machine.meta
type t

val create :
  ?config:config -> ?meta:meta -> ?hooks:Hooks.bundle -> Program.t -> t
(** [hooks] attaches the run's observation hooks at construction, same
    as [Machine.create]. Probes see the same step/rollback/idle sequence
    and the same access/synchronization event stream, with the same
    names, as the fast engine's — traces, profiles and race reports are
    part of the bit-for-bit differential guarantee. *)

val outputs : t -> string list
(** In emission order. *)

val sched : t -> Sched.t
(** The machine's scheduler — the attach point for the record/replay
    hooks ({!Sched.set_tap}, {!Sched.set_feed}). *)

val hooks : t -> Hooks.target
(** The machine's six hook slots, bundled for [Hooks.install] and the
    [Hooks.with_installed] compatibility shim. *)

val stats : t -> Stats.t
val outcome : t -> Outcome.t option

val thread_summaries : t -> (int * string * string list) list
(** Same contract (and byte-identical output) as
    [Machine.thread_summaries]. *)

val steps : t -> int
(** Virtual time: scheduler steps taken so far (idle ticks included). *)

val step : t -> bool
(** Run one scheduler step; [false] once the program has finished. *)

val run : t -> Outcome.t
val run_program : ?config:config -> ?meta:meta -> Program.t -> t * Outcome.t
