(* The block-compiled engine: [Machine]'s state and semantics, driven
   through [Compile]'s threaded code.

   The machine state IS a [Machine.t] — same linked program, same
   threads, heap, locks, scheduler and statistics — plus the compiled
   code. What changes is the driver: where [Machine.run] pays an
   eligibility scan, a scheduling decision and a full opcode dispatch
   per instruction, this driver recognizes the (overwhelmingly common)
   configuration in which the scheduler has no choice to make — exactly
   one eligible thread, no tap or feed installed — and retires the
   thread's current straight-line run of compiled closures in a tight
   loop, consulting nobody.

   Correctness of the window rests on three facts, each enforced
   elsewhere:

   - [Sched.choose_idx] with one eligible thread and no hooks returns
     immediately: no rng draw, no cursor movement ([sched.ml]). Skipping
     the call entirely is therefore unobservable.
   - A straight-line (non-schedulable) instruction of the running thread
     cannot change any *other* thread's eligibility: it touches only
     registers, stack slots, heap cells and globals, never locks,
     events, thread statuses or the thread table. The only time-based
     wakes are bounded below by the [horizon] computed at window entry,
     and the window never runs past it.
   - With every probe uninstalled, [Machine]'s per-step hook work is a
     handful of [None] matches — emitting nothing — so skipping it is
     byte-invisible in every observable (traces, profiles, race reports,
     schedule logs, stats).

   Whenever any of this fails to hold — a hook is installed, several
   threads are eligible, the one eligible thread sits at a schedulable
   op — the driver falls back to [Machine]'s own generic path
   ([Machine.step] / [Machine.run_thread_step]), which is correct by
   construction. [Ref_machine] remains the oracle; the three-way
   differential suite enforces bit-for-bit identity. *)

open Conair_ir

type t = { m : Machine.t; code : Compile.program }

type config = Machine.config
type meta = Machine.meta

let create ?config ?meta ?hooks prog =
  let m = Machine.create ?config ?meta ?hooks prog in
  { m; code = Compile.compile m.Machine.linked }

let machine bm = bm.m
let outputs bm = Machine.outputs bm.m
let stats bm = Machine.stats bm.m
let steps bm = bm.m.Machine.step
let outcome bm = bm.m.Machine.outcome
let sched bm = bm.m.Machine.sched
let thread bm = Machine.thread bm.m
let live_threads bm = Machine.live_threads bm.m
let hooks bm = Machine.hooks bm.m
let step bm = Machine.step bm.m
let thread_summaries bm = Machine.thread_summaries bm.m

(* Any installed hook observes (or steers) per-step state the window
   skips, so its presence sends every step down the generic path.
   [profile_sites] counts per-instruction hits the same way. *)
let hooked (m : Machine.t) =
  m.Machine.trace <> None || m.Machine.prof <> None || m.Machine.race <> None
  || m.Machine.config.Machine.profile_sites
  || m.Machine.sched.Sched.tap <> None
  || m.Machine.sched.Sched.feed <> None

(* The earliest virtual time at which any thread other than [active]
   could become eligible on its own: sleepers wake at [until], timed
   lock/event waiters give up at [since + timeout]. Waiters without a
   timeout need another thread's action (an unlock, a notify, a death) —
   and the active thread's straight-line run performs none — so they
   cannot constrain the window. Capped at the fuel budget. *)
let horizon (m : Machine.t) (active : Thread.t) =
  let bound = ref m.Machine.config.Machine.fuel in
  for i = 0 to m.Machine.live_n - 1 do
    let th = m.Machine.live.(i) in
    if th != active then begin
      match th.Thread.status with
      | Thread.Sleeping until -> if until < !bound then bound := until
      | Thread.Blocked_lock { since; timeout = Some t; _ }
      | Thread.Blocked_event { since; timeout = Some t; _ } ->
          if since + t < !bound then bound := since + t
      | _ -> ()
    end
  done;
  !bound

(* Retire compiled code of [th] until the window closes: a schedulable
   op, a thread death, a decided outcome, a fault, or the step budget
   [bound]. The caller guarantees [m.step < bound], that [th] is the
   only eligible thread, and that no hook is installed.

   The normal case dispatches a chain: [cb_chain.(idx)] retires every
   instruction from [idx] onward — chaining through jumps, branches,
   calls and returns — under one call, bumping [m.step] per link as it
   goes. [cb_need.(idx)] bounds the steps the chain can consume before
   its next budget gate, and every control transfer re-checks
   [m.wbound], so the window never runs past its horizon; when the
   budget left is smaller than the next run, the single-step closures
   ([cb_one]) retire the tail one instruction at a time (their
   transfers gate on the same budget). The loop re-fetches the frame
   and block from the thread on every driver round trip — chains move
   the program point arbitrarily far. *)
let run_window bm (th : Thread.t) bound =
  let m = bm.m in
  let code = bm.code in
  m.Machine.wbound <- bound;
  let step0 = m.Machine.step in
  let sched_steps = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let f = Thread.top th in
    let cbv =
      code.(f.Thread.func.Link.lf_id).(f.Thread.block.Link.lb_index)
    in
    let i = f.Thread.idx in
    match
      if m.Machine.step + cbv.Compile.cb_need.(i) <= bound then
        cbv.Compile.cb_chain.(i) m th f
      else cbv.Compile.cb_one.(i) m th f
    with
    | 0 (* t_refresh *) | 4 (* t_single *) ->
        if m.Machine.step >= bound then continue_ := false
    | 1 (* t_end *) -> continue_ := false
    | 2 (* t_sched *) ->
        (* A schedulable op at [fr.idx]: one generic step. The
           scheduler's choice is still forced (the window invariant
           holds until the op runs), so skipping [choose_idx] remains
           unobservable; the op itself may wake, block, spawn or kill
           threads, which ends the window. [run_thread_step] counts
           the instruction; the step counters are ours. *)
        Machine.run_thread_step m th;
        m.Machine.step <- m.Machine.step + 1;
        incr sched_steps;
        continue_ := false
    | _ (* t_failed *) -> continue_ := false
    | exception Machine.Fault msg ->
        (* replicates [run_thread_step]'s fault arm. Links raise before
           moving the program point (the one after-pop fault is compiled
           inline), so the faulting frame is on top with [fr.idx] at the
           faulting instruction, whose step is not yet counted. *)
        Machine.close_episode m th;
        let f = Thread.top th in
        let iid =
          let iids =
            code.(f.Thread.func.Link.lf_id).(f.Thread.block.Link.lb_index)
              .Compile.cb_iids
          in
          let idx = f.Thread.idx in
          if idx < Array.length iids then Some iids.(idx) else None
        in
        Machine.set_failure m ~kind:Instr.Seg_fault ~site_id:None ~iid
          ~tid:th.Thread.tid ~msg;
        m.Machine.step <- m.Machine.step + 1;
        continue_ := false
  done;
  (* [m.step] moved once per retired step (chain links count their own);
     schedulable ops were counted by [run_thread_step], the rest is
     compiled instructions. *)
  let retired = m.Machine.step - step0 in
  m.Machine.stats.Stats.steps <- m.Machine.stats.Stats.steps + retired;
  m.Machine.stats.Stats.instrs <-
    m.Machine.stats.Stats.instrs + (retired - !sched_steps);
  (* The flight recorder sees the window as [retired] consecutive
     decisions for [th] — exactly what [Machine.step] would have pushed
     one at a time — accounted in bulk so the recorder never forces the
     window off its fast path. None is preemptive: [th] was the only
     eligible thread for the whole window (see the invariant above). *)
  match m.Machine.flight with
  | None -> ()
  | Some fl -> Flight_ring.push_run fl th.Thread.tid retired

(* One fast-path attempt. Returns [true] if it made progress (or decided
   the outcome); [false] sends the caller to the generic [Machine.step].
   Mirrors [Machine.step]'s eligibility scan and its rn = 0 handling. *)
let try_fast bm =
  let m = bm.m in
  let n = m.Machine.live_n in
  let count = ref 0 and first = ref (-1) in
  for i = 0 to n - 1 do
    if Machine.eligible m m.Machine.live.(i) then begin
      if !count = 0 then first := i;
      incr count
    end
  done;
  if !count = 0 then begin
    (* Nobody is eligible. [Machine.step] would retire idle steps one at
       a time until the nearest time-based wake; take them in bulk. *)
    let wake = ref max_int in
    for i = 0 to n - 1 do
      match m.Machine.live.(i).Thread.status with
      | Thread.Sleeping until -> if until < !wake then wake := until
      | Thread.Blocked_lock { since; timeout = Some t; _ }
      | Thread.Blocked_event { since; timeout = Some t; _ } ->
          if since + t < !wake then wake := since + t
      | _ -> ()
    done;
    if !wake = max_int then
      m.Machine.outcome <-
        Some
          (Outcome.Hang
             { step = m.Machine.step; blocked = Machine.live_threads m })
    else begin
      (* an ineligible waiter's wake time is strictly in the future *)
      let target = min !wake m.Machine.config.Machine.fuel in
      let skip = target - m.Machine.step in
      m.Machine.step <- m.Machine.step + skip;
      m.Machine.stats.Stats.idle <- m.Machine.stats.Stats.idle + skip;
      m.Machine.stats.Stats.steps <- m.Machine.stats.Stats.steps + skip
    end;
    true
  end
  else if !count > 1 then false
  else begin
    let th = m.Machine.live.(!first) in
    match th.Thread.status with
    | Thread.Blocked_lock _ | Thread.Blocked_event _ | Thread.Blocked_join _ ->
        (* stands at its blocking instruction — a schedulable op *)
        false
    | _ ->
        (* Runnable, or a sleeper whose deadline passed: wake it exactly
           as [run_thread_step] would (the trace is off). *)
        (match th.Thread.status with
        | Thread.Sleeping _ -> th.Thread.status <- Thread.Runnable
        | _ -> ());
        let bound = horizon m th in
        if bound <= m.Machine.step then false
        else begin
          run_window bm th bound;
          true
        end
  end

(* [Machine.step], with the chosen thread's instruction dispatched
   through the compiled code instead of [exec_instr]'s interpretive
   match. Used when the window fast path does not apply (several
   eligible threads, or the one eligible thread is blocked/at a
   stopper) but no hook is installed — the scheduler is still consulted
   for every step ([choose_idx] over the same candidate list, in the
   same order), so scheduling decisions, rng draws and all observables
   are byte-identical; only the opcode dispatch is cheaper. Schedulable
   ops and [L_exit] still run through [Machine.run_thread_step], and
   [m.wbound] is floored so a transfer link never chains past its own
   step. *)
let generic_step bm =
  let m = bm.m in
  let n = m.Machine.live_n in
  let rn = ref 0 in
  for i = 0 to n - 1 do
    if Machine.eligible m m.Machine.live.(i) then begin
      m.Machine.ready.(!rn) <- i;
      incr rn
    end
  done;
  (if !rn = 0 then begin
     (* replicates [Machine.step]'s nobody-eligible arm (the profiler's
        idle probe is off by construction here) *)
     let waiting_on_time = ref false in
     for i = 0 to n - 1 do
       match m.Machine.live.(i).Thread.status with
       | Thread.Sleeping _
       | Thread.Blocked_lock { timeout = Some _; _ }
       | Thread.Blocked_event { timeout = Some _; _ } ->
           waiting_on_time := true
       | _ -> ()
     done;
     if !waiting_on_time then begin
       m.Machine.step <- m.Machine.step + 1;
       m.Machine.stats.Stats.idle <- m.Machine.stats.Stats.idle + 1;
       m.Machine.stats.Stats.steps <- m.Machine.stats.Stats.steps + 1
     end
     else
       m.Machine.outcome <-
         Some
           (Outcome.Hang
              { step = m.Machine.step; blocked = Machine.live_threads m })
   end
   else begin
     let k =
       Sched.choose_idx m.Machine.sched
         ~tid_of:(fun j -> m.Machine.live.(m.Machine.ready.(j)).Thread.tid)
         !rn
     in
     let th = m.Machine.live.(m.Machine.ready.(k)) in
     (match m.Machine.flight with
     | None -> ()
     | Some fl ->
         (* same classification as [Machine.step]'s push *)
         let tid = th.Thread.tid in
         let p = Flight_ring.prev fl in
         let preemptive =
           tid <> p && p >= 0
           &&
           let found = ref false in
           for j = 0 to !rn - 1 do
             if m.Machine.live.(m.Machine.ready.(j)).Thread.tid = p then
               found := true
           done;
           !found
         in
         Flight_ring.push fl tid ~preemptive);
     let fr = Thread.top th in
     let cbv =
       bm.code.(fr.Thread.func.Link.lf_id).(fr.Thread.block.Link.lb_index)
     in
     let i = fr.Thread.idx in
     if cbv.Compile.cb_sched.(i) then begin
       Machine.run_thread_step m th;
       m.Machine.step <- m.Machine.step + 1;
       m.Machine.stats.Stats.steps <- m.Machine.stats.Stats.steps + 1
     end
     else begin
       (* [run_thread_step]'s preamble for a compiled instruction: wake
          a chosen sleeper (the trace is off), count the instruction. *)
       (match th.Thread.status with
       | Thread.Sleeping _ -> th.Thread.status <- Thread.Runnable
       | _ -> ());
       m.Machine.stats.Stats.instrs <- m.Machine.stats.Stats.instrs + 1;
       m.Machine.wbound <- min_int;
       (match cbv.Compile.cb_one.(i) m th fr with
       | _ -> ()
       | exception Machine.Fault msg ->
           Machine.close_episode m th;
           let iid =
             let iids = cbv.Compile.cb_iids in
             if i < Array.length iids then Some iids.(i) else None
           in
           Machine.set_failure m ~kind:Instr.Seg_fault ~site_id:None ~iid
             ~tid:th.Thread.tid ~msg;
           m.Machine.step <- m.Machine.step + 1);
       m.Machine.stats.Stats.steps <- m.Machine.stats.Stats.steps + 1
     end
   end);
  m.Machine.outcome = None

let run bm =
  let m = bm.m in
  let rec go () =
    if m.Machine.step >= m.Machine.config.Machine.fuel then begin
      m.Machine.outcome <- Some (Outcome.Fuel_exhausted m.Machine.step);
      Outcome.Fuel_exhausted m.Machine.step
    end
    else
      match m.Machine.outcome with
      | Some o -> o
      | None ->
          if m.Machine.live_n = 0 then begin
            m.Machine.outcome <- Some Outcome.Success;
            Outcome.Success
          end
          else if hooked m then
            if Machine.step m then go ()
            else Option.value ~default:Outcome.Success m.Machine.outcome
          else if try_fast bm then go ()
          else if generic_step bm then go ()
          else Option.value ~default:Outcome.Success m.Machine.outcome
  in
  go ()

let run_program ?config ?meta prog =
  let bm = create ?config ?meta prog in
  let outcome = run bm in
  (bm, outcome)
