(* Per-thread interpreter state over the pre-resolved ([Link]ed) program:
   frames hold a flat register array indexed by the function's interned
   register indices, the call stack's depth is maintained as a counter
   (not recomputed by [List.length]), and the acquisition log is pruned
   only when the reexecution region actually advances. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label

(* The "undefined register" sentinel. A register-array slot holding this
   exact allocation (physical equality) has never been written; a program
   that computes [Int min_int] gets a *different* allocation, so user
   values can never be mistaken for it. *)
let undef : Value.t = Value.Int min_int

type frame = {
  func : Link.lfunc;
  mutable block : Link.lblock;
  mutable idx : int;  (** next instruction index; [= length] means terminator *)
  mutable regs : Value.t array;  (** indexed by the function's interning *)
  mutable stack_vars : (string, Value.t) Hashtbl.t option;
      (** named frame slots, allocated on first write: most frames never
          touch one, and calls are hot enough that the empty table was a
          measurable cost *)
  ret_reg : int option;  (** caller's register index for the return value *)
}

(** The saved register image + program point (setjmp analogue). Resumption
    happens *after* the [Checkpoint] instruction, like returning from
    [setjmp] via [longjmp]: the region counter is not incremented again, so
    resources re-acquired during the retry keep the same region tag.

    The resume block is remembered by *label*, not index: applicability
    and rollback re-resolve it against whatever function the frame at the
    checkpoint's depth currently runs — the original map-based semantics,
    which the robustness tests pin down with same-label cross-function
    shapes. [ck_func] remembers which interning [ck_regs] is indexed by,
    for the rare cross-function restore. *)
type checkpoint = {
  ck_depth : int;  (** call-stack depth at save time *)
  ck_func : Link.lfunc;  (** the interning of [ck_regs] *)
  ck_block : Label.t;
  ck_idx : int;  (** resume index (just past the checkpoint) *)
  ck_regs : Value.t array;  (** a private copy, never aliased by a frame *)
  ck_counter : int;
  ck_step : int;  (** when it was taken, for the rollback-safety verifier *)
}

type status =
  | Runnable
  | Sleeping of int  (** until this step *)
  | Blocked_lock of { name : string; since : int; timeout : int option }
  | Blocked_event of { name : string; since : int; timeout : int option }
  | Blocked_join of int
  | Done
  | Failed

(** A resource acquired inside the current reexecution region, to be
    released if the region rolls back (§4.1). *)
type resource = R_lock of string | R_block of int

type recovering = { rec_site : int; rec_start : int; rec_retries_before : int }

type t = {
  tid : int;
  mutable stack : frame list;  (** top of stack first *)
  mutable stack_depth : int;  (** invariant: [= List.length stack] *)
  mutable status : status;
  mutable checkpoint : checkpoint option;
  mutable region_counter : int;
  retries : (int, int) Hashtbl.t;  (** site_id -> rollbacks so far *)
  mutable acq_log : (resource * int) list;  (** resource, region tag *)
  mutable last_pruned_region : int;  (** region tag the log was last pruned to *)
  mutable last_destroy_step : int;
  mutable recovering : recovering option;
}

let make_frame (func : Link.lfunc) ~args ~ret_reg =
  if Array.length args <> func.Link.lf_nparams then
    invalid_arg
      (Format.asprintf "call to %a: arity mismatch" Ident.Fname.pp
         func.Link.lf_name);
  let regs = Array.make (max 1 func.Link.lf_nregs) undef in
  (* Assign through the param index table so duplicate parameter names
     keep the map semantics (the last binding wins). *)
  Array.iteri (fun i a -> regs.(func.Link.lf_param_index.(i)) <- a) args;
  {
    func;
    block = func.Link.lf_blocks.(func.Link.lf_entry);
    idx = 0;
    regs;
    stack_vars = None;
    ret_reg;
  }

(* A read against a frame with no table behaves as an empty table. *)
let stack_tbl fr =
  match fr.stack_vars with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      fr.stack_vars <- Some h;
      h

let create ~tid (func : Link.lfunc) ~args =
  {
    tid;
    stack = [ make_frame func ~args ~ret_reg:None ];
    stack_depth = 1;
    status = Runnable;
    checkpoint = None;
    region_counter = 0;
    retries = Hashtbl.create 4;
    acq_log = [];
    last_pruned_region = 0;
    last_destroy_step = -1;
    recovering = None;
  }

let top t =
  match t.stack with
  | f :: _ -> f
  | [] -> invalid_arg "Thread.top: empty stack"

let depth t = t.stack_depth

let push_frame t fr =
  t.stack <- fr :: t.stack;
  t.stack_depth <- t.stack_depth + 1

let pop_frame t =
  match t.stack with
  | fr :: rest ->
      t.stack <- rest;
      t.stack_depth <- t.stack_depth - 1;
      fr
  | [] -> invalid_arg "Thread.pop_frame: empty stack"

let retries_of t site =
  Option.value ~default:0 (Hashtbl.find_opt t.retries site)

let bump_retries t site = Hashtbl.replace t.retries site (retries_of t site + 1)

(** Log an acquisition under the current region tag. Entries from older
    regions are dropped only when the region has advanced since the last
    prune: within a region every retained entry already carries the
    current tag, so re-filtering on each acquisition (the previous
    behaviour) was a quadratic no-op. *)
let log_acquisition t r =
  if t.last_pruned_region <> t.region_counter then begin
    t.acq_log <- List.filter (fun (_, tag) -> tag = t.region_counter) t.acq_log;
    t.last_pruned_region <- t.region_counter
  end;
  t.acq_log <- (r, t.region_counter) :: t.acq_log

(** Resources acquired in the current region, and the log without them. *)
let current_region_acquisitions t =
  List.partition (fun (_, tag) -> tag = t.region_counter) t.acq_log

let is_live t =
  match t.status with
  | Done | Failed -> false
  | Runnable | Sleeping _ | Blocked_lock _ | Blocked_event _ | Blocked_join _
    ->
      true
