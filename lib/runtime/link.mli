(** The pre-resolution ("link") pass: compiles a [Program.t] once into an
    execution-ready form — register names interned to dense per-function
    indices, jump/branch labels and call/spawn targets resolved to array
    indices, and the hardening metadata's fail-arm labels pushed down onto
    the blocks they name. The interpreter then runs without any name
    lookups on the hot path.

    Invariant: a linked program is semantically identical to the source
    program under the reference interpreter ([Ref_machine]) — same
    outcomes, outputs, step counts, traces and statistics.
    [test_fast_exec.ml] enforces this across the bugbench catalog. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

(** A pre-resolved operand: a register index into the frame's register
    array, or an immediate. *)
type rarg = L_reg of int | L_const of Value.t

(** Pre-resolved operations, mirroring [Instr.op] one-to-one. Register
    fields are indices into the enclosing function's register array;
    [fid] fields index [lp_funcs] ([-1] = unknown callee, which faults at
    execution time exactly like the unlinked interpreter). *)
type lop =
  | L_move of int * rarg
  | L_binop of int * Instr.binop * rarg * rarg
  | L_unop of int * Instr.unop * rarg
  | L_load_global of int * string
  | L_load_stack of int * string
  | L_store_global of string * rarg
  | L_store_stack of string * rarg
  | L_load_idx of int * rarg * rarg
  | L_store_idx of rarg * rarg * rarg
  | L_alloc of int * rarg
  | L_free of rarg
  | L_lock of rarg
  | L_unlock of rarg
  | L_assert of { cond : rarg; msg : string; oracle : bool }
  | L_output of { fmt : string; args : rarg array }
  | L_call of { ret : int option; fid : int; fname : Fname.t; args : rarg array }
  | L_spawn of { reg : int; fid : int; fname : Fname.t; args : rarg array }
  | L_join of rarg
  | L_sleep of int
  | L_nop
  | L_wait of string
  | L_notify of string
  | L_checkpoint of int
  | L_ptr_guard of int * rarg * rarg
  | L_timed_lock of int * rarg * int
  | L_timed_wait of int * string * int
  | L_try_recover of { site_id : int; kind : Instr.failure_kind }
  | L_fail_stop of { site_id : int; kind : Instr.failure_kind; msg : string }

type linstr = {
  li_iid : int;  (** source instruction id (profiling, crash reports) *)
  li_op : lop;
  li_destroying : bool;  (** [Instr.dynamically_destroying], precomputed *)
}

type lterm =
  | L_jump of int
  | L_branch of rarg * int * int
  | L_return of rarg option
  | L_exit

type lblock = {
  lb_index : int;
  lb_label : Label.t;
  lb_label_name : string;  (** [Label.name lb_label], precomputed *)
  lb_instrs : linstr array;
  lb_term : lterm;
  lb_site : int option;
      (** the hardening site whose fail arm this block is, if any *)
}

type lfunc = {
  lf_id : int;
  lf_src : Func.t;
  lf_name : Fname.t;
  lf_qname : string;  (** [Fname.name lf_name], precomputed *)
  lf_nparams : int;
  lf_param_index : int array;  (** param position -> register index *)
  lf_nregs : int;
  lf_reg_names : Reg.t array;  (** register index -> source name *)
  lf_reg_index : (string, int) Hashtbl.t;  (** register name -> index *)
  lf_blocks : lblock array;
  lf_entry : int;
  lf_block_index : (string, int) Hashtbl.t;  (** label name -> block index *)
}

type program = {
  lp_src : Program.t;
  lp_funcs : lfunc array;
  lp_main : int;
}

val link :
  ?fail_blocks:(Label.t * int) list ->
  ?fail_index:(string, int) Hashtbl.t ->
  Program.t ->
  program
(** Pre-resolve a program. [fail_blocks] is the hardening metadata
    (fail-arm label -> site id); omit for unhardened programs.
    [fail_index] is the same mapping already resolved by the hardening
    pass ([Harden.fail_block_index]) and takes precedence.
    @raise Invalid_argument if the program's main function is missing. *)

val func_by_id : program -> int -> lfunc

val find_block_index : lfunc -> Label.t -> int option
(** Label lookup — the rare path (rollback targets); hot paths use the
    indices resolved at link time. *)
