(** Per-run observation hooks, bundled.

    One run may carry up to six hooks: a trace sink, a cost-profiler
    probe, a race-detector probe, the scheduler's record tap / replay
    feed, and the always-on flight-recorder ring. The primary way to
    attach them is the {!bundle} passed to [Machine.create] /
    [Ref_machine.create] / [Block_machine.create] / [Engine.create]:
    the hooks belong to that machine from its first step, are private
    to it, and need no uninstall — which makes concurrent in-process
    runs safe (no shared mutable hook slots).

    The flight slot is the one hook that does {e not} force the block
    engine onto the generic step loop — see {!Flight_ring}.

    {!with_installed} remains as a compatibility shim for the older
    scoped post-create style; it clears all six slots on the way out
    via [Fun.protect]. *)

(** The six hook slots of one engine instance, bundled as setters.
    Obtain one from [Machine.hooks], [Ref_machine.hooks],
    [Block_machine.hooks] or generically from [Engine.hooks]. *)
type target = {
  ht_trace : Trace.sink option -> unit;
  ht_profile : Profile.probe option -> unit;
  ht_race : Race_probe.probe option -> unit;
  ht_flight : Flight_ring.t option -> unit;
  ht_sched : Sched.t;  (** carries the tap and feed slots *)
}

(** An immutable selection of hooks for one run, passed to the engines'
    [create]. *)
type bundle = {
  hb_trace : Trace.sink option;
  hb_profile : Profile.probe option;
  hb_race : Race_probe.probe option;
  hb_flight : Flight_ring.t option;
  hb_tap : (chosen:int -> eligible:int list -> unit) option;
  hb_feed : (eligible:int list -> int) option;
}

val none : bundle
(** No hooks — what a machine gets when [?hooks] is omitted. *)

val bundle :
  ?trace:Trace.sink ->
  ?profile:Profile.probe ->
  ?race:Race_probe.probe ->
  ?flight:Flight_ring.t ->
  ?tap:(chosen:int -> eligible:int list -> unit) ->
  ?feed:(eligible:int list -> int) ->
  unit ->
  bundle

val is_none : bundle -> bool

val install : target -> bundle -> unit
(** Set exactly the hooks the bundle carries; [None] slots are left
    untouched. The escape hatch for self-referential hooks — a feed or
    tap that must capture the machine it observes is necessarily built
    after [create], and installs itself here. *)

val clear : target -> unit
(** Uninstall all six hooks. *)

val with_installed :
  target ->
  ?trace:Trace.sink ->
  ?profile:Profile.probe ->
  ?race:Race_probe.probe ->
  ?flight:Flight_ring.t ->
  ?tap:(chosen:int -> eligible:int list -> unit) ->
  ?feed:(eligible:int list -> int) ->
  (unit -> 'a) ->
  'a
(** Compatibility shim: install the given hooks, run the body, then
    {!clear} — on normal return and on exception alike. New code should
    pass a {!bundle} to [create] instead. *)
