(** Scoped installation of the per-run observation hooks.

    One run may carry up to five hooks: a trace sink, a cost-profiler
    probe, a race-detector probe, and the scheduler's record tap /
    replay feed. [with_installed] installs a chosen subset on an
    engine's {!target} and guarantees — by [Fun.protect] — that all five
    slots are cleared when the body returns or raises, so no engine ever
    leaves hooks installed on an exception path. *)

(** The five hook slots of one engine instance, bundled. Obtain one from
    [Machine.hooks], [Ref_machine.hooks], [Block_machine.hooks] or
    generically from [Engine.hooks]. *)
type target = {
  ht_trace : Trace.sink option -> unit;
  ht_profile : Profile.probe option -> unit;
  ht_race : Race_probe.probe option -> unit;
  ht_sched : Sched.t;  (** carries the tap and feed slots *)
}

val clear : target -> unit
(** Uninstall all five hooks. *)

val with_installed :
  target ->
  ?trace:Trace.sink ->
  ?profile:Profile.probe ->
  ?race:Race_probe.probe ->
  ?tap:(chosen:int -> eligible:int list -> unit) ->
  ?feed:(eligible:int list -> int) ->
  (unit -> 'a) ->
  'a
(** Install the given hooks, run the body, then {!clear} — on normal
    return and on exception alike. *)
