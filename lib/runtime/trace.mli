(** A structured execution trace: scheduling and recovery activity as
    typed events. Opt-in (install a sink with {!Machine.set_trace});
    used by tests to assert event ordering and by the CLI's [--trace] to
    print a recovery audit trail. *)

type event =
  | Ev_schedule of { step : int; tid : int }
  | Ev_block of { step : int; tid : int; lock : string }
  | Ev_wake of { step : int; tid : int }
  | Ev_spawn of { step : int; parent : int; child : int }
  | Ev_thread_done of { step : int; tid : int }
  | Ev_output of { step : int; tid : int; text : string }
  | Ev_checkpoint of { step : int; tid : int; ckpt_id : int }
  | Ev_failure_detected of {
      step : int;
      tid : int;
      site_id : int;
      kind : Conair_ir.Instr.failure_kind;
    }
  | Ev_rollback of { step : int; tid : int; site_id : int; retry : int }
  | Ev_compensate_lock of { step : int; tid : int; lock : string }
  | Ev_compensate_block of { step : int; tid : int; block : int }
  | Ev_recovered of { step : int; tid : int; site_id : int }
  | Ev_fail_stop of { step : int; tid : int; site_id : int }

val pp_event : Format.formatter -> event -> unit

type sink

val create : ?emit:(event -> unit) -> ?store:bool -> unit -> sink
(** A sink retains events in memory by default. [emit] installs a
    listener called synchronously on every event as it is recorded — the
    streaming-telemetry hook (e.g. a JSONL file writer or a live metrics
    feed; compose several by closing over both). [~store:false] keeps
    nothing in memory, so an arbitrarily long run can stream its full
    event log in constant space. *)

val record : sink -> event -> unit

val events : sink -> event list
(** In occurrence order. Empty when the sink was created with
    [~store:false]. *)

val length : sink -> int
(** Events recorded so far (counted even under [store:false]). *)

val pp : Format.formatter -> sink -> unit

val recovery_events : sink -> event list
(** Only the recovery story (detections, rollbacks, compensations,
    recoveries, fail-stops, checkpoints). *)

val pp_recovery_summary : Format.formatter -> sink -> unit
(** The recovery story without the (noisy) checkpoint events. *)
