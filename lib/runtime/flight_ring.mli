(** Always-on flight recorder ring: a fixed-capacity, zero-allocation
    record of the recent scheduler decisions, preemptive switches, and
    synchronization/recovery events of one run.

    A ring is installed per machine through {!Hooks.bundle}'s [flight]
    slot. Unlike the other five hook slots it deliberately does {e not}
    force the block engine off its window fast path: compiled windows
    account their decisions in bulk via {!push_run}, which is what keeps
    recorder-on throughput within a few percent of recorder-off. The
    decision stream is exactly what a full [Conair_replay.Recorder] tap
    would capture, so the tail can be verified against (and regenerated
    into) an ordinary schedule log. *)

type t

type event = {
  mutable fe_kind : int;
  mutable fe_step : int;
  mutable fe_tid : int;
  mutable fe_arg : int;
  mutable fe_detail : string;
}

(** Event kinds stored in [fe_kind]. *)

val k_acquire : int
val k_block : int
val k_release : int
val k_spawn : int
val k_rollback : int
val k_recovered : int
val k_fail : int

val kind_name : int -> string

val default_capacity : int
val default_event_capacity : int

val create : ?cap:int -> ?events:int -> unit -> t
(** [create ()] makes a ring holding the last [cap] (default 4096)
    scheduler decisions and the last [events] (default 256) sync /
    recovery events. Raises [Invalid_argument] on non-positive sizes. *)

val capacity : t -> int

val total : t -> int
(** Decisions ever pushed (the run's non-idle step count so far). *)

val prev : t -> int
(** Previously chosen tid, [-1] before the first decision. Engines use
    this to classify preemptive switches with the recorder's rule. *)

val push : t -> int -> preemptive:bool -> unit
(** Record one scheduler decision. O(1), allocation-free. *)

val push_run : t -> int -> int -> unit
(** [push_run t tid count] records [count] consecutive decisions for
    [tid] — a block-engine window, none of them preemptive by the
    window's single-eligible-thread invariant. *)

val event :
  t -> kind:int -> step:int -> tid:int -> arg:int -> detail:string -> unit
(** Record a sync/recovery event in place (no allocation; [detail] must
    be an existing string such as a lock name). *)

(** {1 Dump-time readers} *)

val tail_first : t -> int
(** Absolute ordinal of the first decision still in the ring. *)

val tail : t -> int array
(** The retained decision tail, oldest first. *)

val tail_preemptions : t -> int array
(** Absolute ordinals of the preemptive switches within {!tail},
    ascending. Complete for the retained tail. *)

val events : t -> event list
(** Retained events, oldest first (fresh copies). *)

val events_total : t -> int
