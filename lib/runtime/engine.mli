(** Engine selection: one name and one generic driver API over the
    three interpreters.

    - [Ref] — the original map-based reference interpreter
      ([Ref_machine]), the semantic oracle; deliberately slow.
    - [Fast] — the pre-resolved engine ([Machine]): dense register
      arrays, linked jump/call targets.
    - [Block] — the block-compiled engine ([Block_machine]): threaded
      code over the linked program, scheduler consulted only at
      schedulable ops; the fastest.

    All three agree bit-for-bit on every observable; pick by speed. *)

open Conair_ir

type t = Ref | Fast | Block

val all : t list
(** In oracle-to-fastest order: [Ref; Fast; Block]. *)

val name : t -> string
(** ["ref"], ["fast"], ["block"] — the names the CLI and schedule logs
    use. *)

val of_string : string -> (t, string) result

(** A machine of whichever engine was selected. *)
type machine =
  | M_ref of Ref_machine.t
  | M_fast of Machine.t
  | M_block of Block_machine.t

val create :
  ?config:Machine.config ->
  ?meta:Machine.meta ->
  ?hooks:Hooks.bundle ->
  t ->
  Program.t ->
  machine
(** [hooks] attaches the run's observation hooks at construction — the
    re-entrant alternative to [Hooks.with_installed]; see
    [Machine.create]. *)

val engine_of : machine -> t
val run : machine -> Outcome.t
val step : machine -> bool
val outputs : machine -> string list
val stats : machine -> Stats.t
val steps : machine -> int
val outcome : machine -> Outcome.t option
val sched : machine -> Sched.t

val hooks : machine -> Hooks.target
(** The machine's six hook slots, for [Hooks.install] and the
    [Hooks.with_installed] compatibility shim. *)

val thread_summaries : machine -> (int * string * string list) list
(** [Machine.thread_summaries] on whichever engine — byte-identical
    across the three. *)

val run_program :
  ?config:Machine.config ->
  ?meta:Machine.meta ->
  ?hooks:Hooks.bundle ->
  t ->
  Program.t ->
  machine * Outcome.t
