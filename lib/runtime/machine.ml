(* The Mir interpreter with the ConAir recovery runtime built in — the
   *pre-resolved* engine.

   [create] runs the [Link] pass once: register names become dense indices
   into a per-frame [Value.t array], jump labels and call targets become
   array indices, and the hardening metadata's fail-arm labels are
   annotations on the blocks themselves. The step loop then never looks a
   name up: no [Func.find_block], no [Program.find_func], no
   [Reg.Map.find_opt], and no per-step fold over the thread table — the
   scheduler keeps a dense array of live threads, maintained at spawn and
   death.

   One scheduler step executes one instruction (or terminator) of one
   thread. The recovery pseudo-instructions inserted by the transformation
   are interpreted here:

   - [Checkpoint]: bump the region counter and save the register image +
     program point into the thread's single checkpoint slot (an
     [Array.copy] blit);
   - [Try_recover]: if a checkpoint exists and the per-site retry budget is
     not exhausted, compensate (release locks / free blocks acquired in the
     current region, §4.1), verify the rollback-safety invariant if asked,
     restore the register image and jump back — otherwise fall through to
     the [Fail_stop];
   - [Timed_lock]: block with a timeout measured in scheduler steps and
     report success/timeout in a register.

   Unhardened programs fail exactly where hardened ones would recover:
   asserts stop the program, invalid dereferences are segmentation faults,
   and a configuration where every live thread is blocked is a hang.

   Semantics are bit-for-bit those of the original map-based interpreter,
   which survives as [Ref_machine]: same outcomes, outputs, step counts,
   traces, statistics and random-stream consumption, enforced by the
   differential test over the bugbench catalog. *)

open Conair_ir
module Reg = Ident.Reg
module Label = Ident.Label
module Fname = Ident.Fname

(** How a deadlock is noticed at a hardened lock site (§3.1.1: "ConAir
    can work with any deadlock-detection mechanism"). [Timeout_based] is
    the paper's prototype (MySQL-style lock timeouts); [Wait_graph]
    follows the owner chain of the contended lock and reports a deadlock
    the moment a cycle closes (Jula et al.-style), so recovery starts
    immediately instead of after the timeout. *)
type deadlock_detection = Timeout_based | Wait_graph

type config = {
  policy : Sched.policy;
  fuel : int;  (** scheduler-step budget before giving up *)
  max_retries : int;  (** paper default: one million *)
  deadlock_detection : deadlock_detection;
  deadlock_backoff : int;
      (** max random sleep after a deadlock rollback (livelock avoidance) *)
  verify_rollbacks : bool;
      (** check at every rollback that no destroying instruction executed
          since the checkpoint (the static analysis' safety invariant) *)
  perturb_timing : bool;
      (** randomize [Sleep] durations (in [0..n]) and stagger thread
          startup — the Rx-style "environment change during reexecution"
          baselines rely on; never used by ConAir itself *)
  spawn_jitter : int;
      (** max random startup delay for spawned threads when
          [perturb_timing] is on (a restarted process never reproduces the
          original thread-creation timing) *)
  profile_sites : bool;
      (** record per-instruction execution counts (ConSeq-style
          well-tested-site profiling, §3.4); off by default *)
}

let default_config =
  {
    policy = Sched.Round_robin;
    fuel = 2_000_000;
    max_retries = 1_000_000;
    deadlock_detection = Timeout_based;
    deadlock_backoff = 16;
    verify_rollbacks = true;
    perturb_timing = false;
    spawn_jitter = 150;
    profile_sites = false;
  }

(** Metadata from the hardening pass: fail-arm labels per site, used to
    detect that a recovering thread has finally passed its failure site.
    [fail_index] is the same mapping pre-resolved by [Harden.apply]; the
    link pass consumes it directly. *)
type meta = {
  fail_blocks : (Label.t * int) list;
  fail_index : (string, int) Hashtbl.t;
}

let meta_of_harden (h : Conair_transform.Harden.t) =
  { fail_blocks = h.site_fail_blocks; fail_index = h.fail_block_index }

exception Fault of string
(** Internal: an unrecovered runtime fault of the current thread. *)

type t = {
  prog : Program.t;
  linked : Link.program;  (** [prog], pre-resolved once at [create] *)
  config : config;
  meta : meta option;
  globals : (string, Value.t) Hashtbl.t;
  heap : Heap.t;
  locks : Locks.t;
  threads : (int, Thread.t) Hashtbl.t;
  mutable next_tid : int;
  mutable step : int;
  mutable outputs : string list;  (** newest first *)
  stats : Stats.t;
  sched : Sched.t;
  mutable outcome : Outcome.t option;
  mutable trace : Trace.sink option;
  mutable prof : Profile.probe option;
      (** cost-profiler probe; like [trace], one [match] per step when off *)
  mutable race : Race_probe.probe option;
      (** race-detector probe; one [match] per memory/sync op when off *)
  mutable flight : Flight_ring.t option;
      (** flight-recorder ring; one [match] per decision / sync op when
          off, and the one hook that keeps the block engine on its
          compiled window fast path *)
  mutable live : Thread.t array;
      (** slots [0, live_n): the live threads, ascending tid — maintained
          at spawn and death instead of folded from [threads] per step *)
  mutable live_n : int;
  mutable ready : int array;  (** scratch: eligible indices into [live] *)
  mutable wbound : int;
      (** the running window's step budget, consulted by compiled
          control-transfer links ([Compile]) before chaining into their
          target block; owned by [Block_machine], unused here *)
}

(* --- the live-thread array ----------------------------------------- *)

let add_live m th =
  let n = m.live_n in
  if n >= Array.length m.live then begin
    let cap = max 4 (2 * n) in
    let live = Array.make cap th in
    Array.blit m.live 0 live 0 n;
    m.live <- live;
    let ready = Array.make cap 0 in
    Array.blit m.ready 0 ready 0 (Array.length m.ready);
    m.ready <- ready
  end;
  m.live.(n) <- th;
  m.live_n <- n + 1

(* Death is rare (thread exit, program failure); a linear scan + shift
   keeps the array dense and tid-sorted. *)
let remove_live m (th : Thread.t) =
  let n = m.live_n in
  let i = ref 0 in
  while !i < n && m.live.(!i) != th do incr i done;
  if !i < n then begin
    for j = !i to n - 2 do
      m.live.(j) <- m.live.(j + 1)
    done;
    m.live_n <- n - 1
  end

let rebuild_live m =
  m.live_n <- 0;
  Hashtbl.fold
    (fun tid th acc -> if Thread.is_live th then (tid, th) :: acc else acc)
    m.threads []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (_, th) -> add_live m th)

(* ------------------------------------------------------------------- *)

let create ?(config = default_config) ?meta ?(hooks = Hooks.none)
    (prog : Program.t) =
  let linked =
    match meta with
    | Some mt -> Link.link ~fail_index:mt.fail_index prog
    | None -> Link.link prog
  in
  let globals = Hashtbl.create 32 in
  List.iter (fun (g, v) -> Hashtbl.replace globals g v) prog.globals;
  let m =
    {
      prog;
      linked;
      config;
      meta;
      globals;
      heap = Heap.create ();
      locks = Locks.create prog.mutexes;
      threads = Hashtbl.create 8;
      next_tid = 0;
      step = 0;
      outputs = [];
      stats = Stats.create ();
      sched = Sched.create config.policy;
      outcome = None;
      trace = hooks.Hooks.hb_trace;
      prof = hooks.Hooks.hb_profile;
      race = hooks.Hooks.hb_race;
      flight = hooks.Hooks.hb_flight;
      live = [||];
      live_n = 0;
      ready = [||];
      wbound = 0;
    }
  in
  Sched.set_tap m.sched hooks.Hooks.hb_tap;
  Sched.set_feed m.sched hooks.Hooks.hb_feed;
  let main = Link.func_by_id linked linked.Link.lp_main in
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  let th = Thread.create ~tid main ~args:[||] in
  Hashtbl.replace m.threads tid th;
  add_live m th;
  m

let outputs m = List.rev m.outputs
let stats m = m.stats

(** The machine's six hook slots, bundled for [Hooks.install] and the
    [Hooks.with_installed] compatibility shim. *)
let hooks m =
  {
    Hooks.ht_trace = (fun s -> m.trace <- s);
    ht_profile = (fun p -> m.prof <- p);
    ht_race = (fun p -> m.race <- p);
    ht_flight = (fun f -> m.flight <- f);
    ht_sched = m.sched;
  }

let flight_event m ~kind ~tid ~arg ~detail =
  match m.flight with
  | None -> ()
  | Some fl -> Flight_ring.event fl ~kind ~step:m.step ~tid ~arg ~detail

let trace m ev =
  match m.trace with None -> () | Some sink -> Trace.record sink ev

let thread m tid = Hashtbl.find m.threads tid
let live_threads m = List.init m.live_n (fun i -> m.live.(i).Thread.tid)

(* Per-thread post-mortem view for diagnostic bundles: every thread ever
   spawned (the table keeps finished ones), its status rendered to an
   engine-independent string, and the locks it holds. *)
let thread_summaries m =
  Hashtbl.fold
    (fun tid (th : Thread.t) acc ->
      let status =
        match th.Thread.status with
        | Thread.Runnable -> "runnable"
        | Thread.Sleeping until -> "sleeping:" ^ string_of_int until
        | Thread.Blocked_lock { name; _ } -> "blocked_lock:" ^ name
        | Thread.Blocked_event { name; _ } -> "blocked_event:" ^ name
        | Thread.Blocked_join t -> "blocked_join:" ^ string_of_int t
        | Thread.Done -> "done"
        | Thread.Failed -> "failed"
      in
      (tid, status, Locks.held_by m.locks ~tid) :: acc)
    m.threads []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* --- race-probe emission ------------------------------------------- *)
(* Each helper is one [match] when no probe is installed; the event
   payloads (stacks, locksets, address values) are only built inside the
   [Some] branch, so the uninstrumented hot path allocates nothing. *)

let race_stack (th : Thread.t) =
  List.map
    (fun (f : Thread.frame) -> f.Thread.func.Link.lf_qname)
    th.Thread.stack

let race_access m (th : Thread.t) (i : Link.linstr) kind addr =
  match m.race with
  | None -> ()
  | Some p ->
      let fr = Thread.top th in
      p.Race_probe.rp_access ~step:m.step ~tid:th.Thread.tid ~iid:i.Link.li_iid
        ~stack:(race_stack th) ~block:fr.Thread.block.Link.lb_label_name ~kind
        ~addr
        ~locks:(Locks.held_by m.locks ~tid:th.Thread.tid)

let race_global m th i kind g =
  match m.race with
  | None -> ()
  | Some _ -> race_access m th i kind (Race_probe.A_global g)

let race_slot m (th : Thread.t) i kind s =
  match m.race with
  | None -> ()
  | Some _ -> race_access m th i kind (Race_probe.A_slot (th.Thread.tid, s))

(* Heap accesses are classified by the *attempted* cell; non-pointer
   operands fault without designating an address and emit nothing. *)
let race_cell m th i kind pv idx =
  match m.race with
  | None -> ()
  | Some _ -> (
      match pv with
      | Value.Ptr { Value.block; offset } ->
          race_access m th i kind (Race_probe.A_cell (block, offset + idx))
      | _ -> ())

let race_free m th i pv =
  match m.race with
  | None -> ()
  | Some _ -> (
      match pv with
      | Value.Ptr { Value.block; _ } ->
          race_access m th i Race_probe.Write (Race_probe.A_block block)
      | _ -> ())

let race_acquire m (th : Thread.t) (i : Link.linstr) name =
  match m.race with
  | None -> ()
  | Some p ->
      p.Race_probe.rp_acquire ~step:m.step ~tid:th.Thread.tid
        ~iid:i.Link.li_iid ~lock:name
        ~locks:(Locks.held_by m.locks ~tid:th.Thread.tid)

let race_request m (th : Thread.t) (i : Link.linstr) name =
  match m.race with
  | None -> ()
  | Some p ->
      p.Race_probe.rp_request ~step:m.step ~tid:th.Thread.tid
        ~iid:i.Link.li_iid ~lock:name
        ~locks:(Locks.held_by m.locks ~tid:th.Thread.tid)

let race_release m (th : Thread.t) name =
  match m.race with
  | None -> ()
  | Some p -> p.Race_probe.rp_release ~step:m.step ~tid:th.Thread.tid ~lock:name

(* ------------------------------------------------------------------ *)
(* Evaluation helpers                                                  *)
(* ------------------------------------------------------------------ *)

let eval_reg (fr : Thread.frame) i =
  let v = fr.regs.(i) in
  if v == Thread.undef then
    raise
      (Fault
         (Format.asprintf "use of undefined register %a" Reg.pp
            fr.func.Link.lf_reg_names.(i)))
  else v

let eval (fr : Thread.frame) = function
  | Link.L_reg i -> eval_reg fr i
  | Link.L_const v -> v

(* Left-to-right, like the operand lists of the unlinked interpreter. *)
let eval_args (fr : Thread.frame) (a : Link.rarg array) =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (eval fr a.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- eval fr a.(i)
    done;
    out
  end

let eval_arg_list (fr : Thread.frame) (a : Link.rarg array) =
  let rec go i =
    if i >= Array.length a then []
    else
      let v = eval fr a.(i) in
      v :: go (i + 1)
  in
  go 0

let as_int = function
  | Value.Int n -> n
  | Value.Bool true -> 1
  | Value.Bool false -> 0
  | v -> raise (Fault ("expected an integer, got " ^ Value.to_string v))

let as_mutex = function
  | Value.Mutex name -> name
  | v -> raise (Fault ("expected a mutex, got " ^ Value.to_string v))

let eval_binop op a b =
  let module I = Instr in
  match op with
  | I.Add -> Value.Int (as_int a + as_int b)
  | I.Sub -> Value.Int (as_int a - as_int b)
  | I.Mul -> Value.Int (as_int a * as_int b)
  | I.Div ->
      let d = as_int b in
      if d = 0 then raise (Fault "division by zero") else Value.Int (as_int a / d)
  | I.Mod ->
      let d = as_int b in
      if d = 0 then raise (Fault "modulo by zero") else Value.Int (as_int a mod d)
  | I.Eq -> Value.Bool (Value.equal a b)
  | I.Ne -> Value.Bool (not (Value.equal a b))
  | I.Lt -> Value.Bool (as_int a < as_int b)
  | I.Le -> Value.Bool (as_int a <= as_int b)
  | I.Gt -> Value.Bool (as_int a > as_int b)
  | I.Ge -> Value.Bool (as_int a >= as_int b)
  | I.And -> Value.Bool (Value.is_true a && Value.is_true b)
  | I.Or -> Value.Bool (Value.is_true a || Value.is_true b)

let eval_unop op a =
  match op with
  | Instr.Not -> Value.Bool (not (Value.is_true a))
  | Instr.Neg -> Value.Int (-as_int a)
  | Instr.Is_null -> Value.Bool (match a with Value.Null -> true | _ -> false)

let render_output fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let i = ref 0 in
  let n = String.length fmt in
  while !i < n do
    if !i + 1 < n && fmt.[!i] = '%' && fmt.[!i + 1] = 'v' then begin
      (match !args with
      | a :: rest ->
          Buffer.add_string buf (Value.to_string a);
          args := rest
      | [] -> Buffer.add_string buf "%v");
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Failure bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

let set_failure m ~kind ~site_id ~iid ~tid ~msg =
  let th = thread m tid in
  (match th.Thread.status with
  | Thread.Done | Thread.Failed -> ()
  | _ ->
      th.Thread.status <- Thread.Failed;
      remove_live m th);
  flight_event m ~kind:Flight_ring.k_fail ~tid
    ~arg:(match site_id with Some s -> s | None -> -1)
    ~detail:msg;
  m.outcome <-
    Some (Outcome.Failed { kind; site_id; iid; tid; step = m.step; msg })

(* A recovering thread just branched: if the not-taken arm is the fail
   block of the site being recovered, the retry finally made it past the
   failure — the episode closes as recovered. [lb_site] was resolved onto
   the block at link time; the unlinked interpreter scanned the metadata
   list here. *)
let note_branch_taken m (th : Thread.t) (fr : Thread.frame) ~taken_idx
    ~other_idx =
  match th.Thread.recovering with
  | Some rec_ when m.meta <> None -> (
      match fr.func.Link.lf_blocks.(other_idx).Link.lb_site with
      | Some site when site = rec_.Thread.rec_site && taken_idx <> other_idx ->
          let ep =
            {
              Stats.ep_site_id = site;
              ep_tid = th.Thread.tid;
              ep_start = rec_.Thread.rec_start;
              ep_end = m.step;
              ep_retries =
                Thread.retries_of th site - rec_.Thread.rec_retries_before;
            }
          in
          m.stats.episodes <- ep :: m.stats.episodes;
          trace m
            (Trace.Ev_recovered
               { step = m.step; tid = th.Thread.tid; site_id = site });
          flight_event m ~kind:Flight_ring.k_recovered ~tid:th.Thread.tid
            ~arg:site ~detail:"";
          th.Thread.recovering <- None
      | _ -> ())
  | _ -> ()

let close_episode m (th : Thread.t) =
  match th.Thread.recovering with
  | None -> ()
  | Some rec_ ->
      let ep =
        {
          Stats.ep_site_id = rec_.Thread.rec_site;
          ep_tid = th.Thread.tid;
          ep_start = rec_.Thread.rec_start;
          ep_end = m.step;
          ep_retries =
            Thread.retries_of th rec_.Thread.rec_site
            - rec_.Thread.rec_retries_before;
        }
      in
      m.stats.episodes <- ep :: m.stats.episodes;
      trace m
        (Trace.Ev_recovered
           { step = m.step; tid = th.Thread.tid; site_id = rec_.Thread.rec_site });
      flight_event m ~kind:Flight_ring.k_recovered ~tid:th.Thread.tid
        ~arg:rec_.Thread.rec_site ~detail:"";
      th.Thread.recovering <- None

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let compensate m (th : Thread.t) =
  let current, rest = Thread.current_region_acquisitions th in
  List.iter
    (fun (r, _) ->
      match r with
      | Thread.R_lock name ->
          if Locks.force_release m.locks name ~tid:th.Thread.tid then begin
            m.stats.compensated_locks <- m.stats.compensated_locks + 1;
            trace m
              (Trace.Ev_compensate_lock
                 { step = m.step; tid = th.Thread.tid; lock = name });
            flight_event m ~kind:Flight_ring.k_release ~tid:th.Thread.tid
              ~arg:(-1) ~detail:name;
            race_release m th name
          end
      | Thread.R_block id ->
          if Heap.release_block m.heap id then begin
            m.stats.compensated_blocks <- m.stats.compensated_blocks + 1;
            trace m
              (Trace.Ev_compensate_block
                 { step = m.step; tid = th.Thread.tid; block = id })
          end)
    current;
  th.Thread.acq_log <- rest

let rollback m (th : Thread.t) (ck : Thread.checkpoint) =
  if m.config.verify_rollbacks && th.Thread.last_destroy_step > ck.Thread.ck_step
  then m.stats.tracecheck_violations <- m.stats.tracecheck_violations + 1;
  while th.Thread.stack_depth > ck.Thread.ck_depth do
    ignore (Thread.pop_frame th)
  done;
  let fr = Thread.top th in
  (if fr.Thread.func == ck.Thread.ck_func then
     Array.blit ck.Thread.ck_regs 0 fr.Thread.regs 0 (Array.length fr.Thread.regs)
   else begin
     (* Cross-function restore (the checkpointing function is not the one
        the surviving frame runs): translate registers by name, exactly
        the replace-the-whole-map semantics of the unlinked interpreter —
        names the checkpoint never bound come back undefined. *)
     let src = ck.Thread.ck_func in
     let dst = fr.Thread.func in
     for j = 0 to Array.length fr.Thread.regs - 1 do
       fr.Thread.regs.(j) <-
         (if j < dst.Link.lf_nregs then
            match
              Hashtbl.find_opt src.Link.lf_reg_index
                (Reg.name dst.Link.lf_reg_names.(j))
            with
            | Some i -> ck.Thread.ck_regs.(i)
            | None -> Thread.undef
          else Thread.undef)
     done
   end);
  (match Link.find_block_index fr.Thread.func ck.Thread.ck_block with
  | Some bi -> fr.Thread.block <- fr.Thread.func.Link.lf_blocks.(bi)
  | None ->
      (* unreachable when guarded by [checkpoint_applicable] *)
      invalid_arg
        (Format.asprintf "Func.block_exn: no block %a in %a" Label.pp
           ck.Thread.ck_block Fname.pp fr.Thread.func.Link.lf_name));
  fr.Thread.idx <- ck.Thread.ck_idx;
  th.Thread.status <- Thread.Runnable;
  m.stats.rollbacks <- m.stats.rollbacks + 1

(* A checkpoint is stale once the frame it was taken in has returned —
   unless the frame now at that depth happens to have a block of the same
   label (the paper's setjmp analogue is exactly this loose). *)
let checkpoint_applicable (th : Thread.t) (ck : Thread.checkpoint) =
  Thread.depth th >= ck.Thread.ck_depth
  &&
  match List.nth_opt th.Thread.stack (Thread.depth th - ck.Thread.ck_depth) with
  | Some fr -> Link.find_block_index fr.Thread.func ck.Thread.ck_block <> None
  | None -> false

let try_recover m (th : Thread.t) ~site_id ~kind =
  (* the maintained depth counter must agree with the actual stack *)
  assert (th.Thread.stack_depth = List.length th.Thread.stack);
  match th.Thread.checkpoint with
  | Some ck
    when Thread.retries_of th site_id < m.config.max_retries
         && checkpoint_applicable th ck ->
      (match th.Thread.recovering with
      | Some r when r.Thread.rec_site = site_id -> ()
      | Some _ -> close_episode m th
      | None -> ());
      if th.Thread.recovering = None then
        th.Thread.recovering <-
          Some
            {
              Thread.rec_site = site_id;
              rec_start = m.step;
              rec_retries_before = Thread.retries_of th site_id;
            };
      Thread.bump_retries th site_id;
      trace m
        (Trace.Ev_rollback
           {
             step = m.step;
             tid = th.Thread.tid;
             site_id;
             retry = Thread.retries_of th site_id;
           });
      (match m.prof with
      | None -> ()
      | Some p ->
          p.Profile.p_rollback ~step:m.step ~tid:th.Thread.tid ~site_id);
      flight_event m ~kind:Flight_ring.k_rollback ~tid:th.Thread.tid
        ~arg:site_id ~detail:"";
      compensate m th;
      rollback m th ck;
      if kind = Instr.Deadlock && m.config.deadlock_backoff > 0 then begin
        let pause =
          1 + Random.State.int (Sched.rng m.sched) m.config.deadlock_backoff
        in
        th.Thread.status <- Thread.Sleeping (m.step + pause)
      end;
      true
  | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)
(* ------------------------------------------------------------------ *)

let advance (fr : Thread.frame) = fr.idx <- fr.idx + 1

let in_wait_cycle m ~tid ~lock =
  let rec chase lock_name seen =
    match Locks.owner m.locks lock_name with
    | None -> false
    | Some owner when owner = tid -> true
    | Some owner ->
        if List.mem owner seen then false
        else begin
          match (thread m owner).Thread.status with
          | Thread.Blocked_lock { name; _ } -> chase name (owner :: seen)
          | _ -> false
        end
  in
  chase lock []

let do_return m (th : Thread.t) v =
  match th.Thread.stack with
  | [] -> invalid_arg "return with empty stack"
  | frame :: rest -> (
      th.Thread.stack <- rest;
      th.Thread.stack_depth <- th.Thread.stack_depth - 1;
      match rest with
      | [] ->
          close_episode m th;
          trace m (Trace.Ev_thread_done { step = m.step; tid = th.Thread.tid });
          th.Thread.status <- Thread.Done;
          remove_live m th
      | caller :: _ -> (
          match frame.Thread.ret_reg with
          | None -> ()
          | Some r -> (
              match v with
              | Some value -> caller.Thread.regs.(r) <- value
              | None ->
                  raise (Fault "function returned no value but one was expected"))))

let exec_call m (th : Thread.t) ~ret ~fid ~fname ~args =
  let fr = Thread.top th in
  let argv = eval_args fr args in
  advance fr;
  if fid < 0 then
    raise (Fault (Format.asprintf "call to unknown %a" Fname.pp fname));
  let f = m.linked.Link.lp_funcs.(fid) in
  Thread.push_frame th (Thread.make_frame f ~args:argv ~ret_reg:ret)

let exec_spawn m (th : Thread.t) ~reg ~fid ~fname ~args =
  let fr = Thread.top th in
  let argv = eval_args fr args in
  if fid < 0 then
    raise (Fault (Format.asprintf "spawn of unknown %a" Fname.pp fname));
  let f = m.linked.Link.lp_funcs.(fid) in
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  let th' = Thread.create ~tid f ~args:argv in
  if m.config.perturb_timing && m.config.spawn_jitter > 0 then
    th'.Thread.status <-
      Thread.Sleeping
        (m.step + Random.State.int (Sched.rng m.sched) m.config.spawn_jitter);
  Hashtbl.replace m.threads tid th';
  add_live m th';
  trace m (Trace.Ev_spawn { step = m.step; parent = th.Thread.tid; child = tid });
  (match m.race with
  | None -> ()
  | Some p -> p.Race_probe.rp_spawn ~step:m.step ~parent:th.Thread.tid ~child:tid);
  flight_event m ~kind:Flight_ring.k_spawn ~tid:th.Thread.tid ~arg:tid
    ~detail:"";
  fr.Thread.regs.(reg) <- Value.Tid tid;
  advance fr

let exec_instr m (th : Thread.t) (i : Link.linstr) =
  let fr = Thread.top th in
  let regs = fr.Thread.regs in
  if i.Link.li_destroying then begin
    th.Thread.last_destroy_step <- m.step;
    if th.Thread.recovering <> None then close_episode m th
  end;
  match i.Link.li_op with
  | Link.L_move (r, a) ->
      regs.(r) <- eval fr a;
      advance fr
  | Link.L_binop (r, op, a, b) ->
      regs.(r) <- eval_binop op (eval fr a) (eval fr b);
      advance fr
  | Link.L_unop (r, op, a) ->
      regs.(r) <- eval_unop op (eval fr a);
      advance fr
  | Link.L_load_global (r, g) -> (
      race_global m th i Race_probe.Read g;
      match Hashtbl.find_opt m.globals g with
      | Some v ->
          regs.(r) <- v;
          advance fr
      | None -> raise (Fault ("load of undeclared global " ^ g)))
  | Link.L_load_stack (r, s) ->
      race_slot m th i Race_probe.Read s;
      regs.(r) <-
        (match fr.Thread.stack_vars with
        | None -> Value.zero
        | Some h -> Option.value ~default:Value.zero (Hashtbl.find_opt h s));
      advance fr
  | Link.L_store_global (g, a) ->
      race_global m th i Race_probe.Write g;
      if Hashtbl.mem m.globals g then begin
        Hashtbl.replace m.globals g (eval fr a);
        advance fr
      end
      else raise (Fault ("store to undeclared global " ^ g))
  | Link.L_store_stack (s, a) ->
      race_slot m th i Race_probe.Write s;
      Hashtbl.replace (Thread.stack_tbl fr) s (eval fr a);
      advance fr
  | Link.L_load_idx (r, p, ix) -> (
      (* operands bound right-to-left, preserving the original argument
         evaluation order; the access is reported before the heap op so
         faulting dereferences are still seen by the detector *)
      let iv = as_int (eval fr ix) in
      let pv = eval fr p in
      race_cell m th i Race_probe.Read pv iv;
      match Heap.load m.heap pv iv with
      | Ok v ->
          regs.(r) <- v;
          advance fr
      | Error e -> raise (Fault e))
  | Link.L_store_idx (p, ix, v) -> (
      let vv = eval fr v in
      let iv = as_int (eval fr ix) in
      let pv = eval fr p in
      race_cell m th i Race_probe.Write pv iv;
      match Heap.store m.heap pv iv vv with
      | Ok () -> advance fr
      | Error e -> raise (Fault e))
  | Link.L_alloc (r, n) ->
      let ptr = Heap.alloc m.heap (as_int (eval fr n)) in
      Thread.log_acquisition th (Thread.R_block ptr.Value.block);
      regs.(r) <- Value.Ptr ptr;
      advance fr
  | Link.L_free p -> (
      let pv = eval fr p in
      race_free m th i pv;
      match Heap.free m.heap pv with
      | Ok () -> advance fr
      | Error e -> raise (Fault e))
  | Link.L_lock mref ->
      let name = as_mutex (eval fr mref) in
      if Locks.try_acquire m.locks name ~tid:th.Thread.tid then begin
        Thread.log_acquisition th (Thread.R_lock name);
        race_acquire m th i name;
        flight_event m ~kind:Flight_ring.k_acquire ~tid:th.Thread.tid ~arg:(-1)
          ~detail:name;
        th.Thread.status <- Thread.Runnable;
        advance fr
      end
      else begin
        match th.Thread.status with
        | Thread.Blocked_lock _ -> ()
        | _ ->
            trace m
              (Trace.Ev_block { step = m.step; tid = th.Thread.tid; lock = name });
            race_request m th i name;
            flight_event m ~kind:Flight_ring.k_block ~tid:th.Thread.tid
              ~arg:(-1) ~detail:name;
            th.Thread.status <-
              Thread.Blocked_lock { name; since = m.step; timeout = None }
      end
  | Link.L_timed_lock (r, mref, timeout) ->
      let name = as_mutex (eval fr mref) in
      if Locks.try_acquire m.locks name ~tid:th.Thread.tid then begin
        Thread.log_acquisition th (Thread.R_lock name);
        race_acquire m th i name;
        flight_event m ~kind:Flight_ring.k_acquire ~tid:th.Thread.tid ~arg:(-1)
          ~detail:name;
        regs.(r) <- Value.truth;
        th.Thread.status <- Thread.Runnable;
        advance fr
      end
      else begin
        let since =
          match th.Thread.status with
          | Thread.Blocked_lock { since; _ } -> since
          | _ -> m.step
        in
        let detected_cycle =
          m.config.deadlock_detection = Wait_graph
          && in_wait_cycle m ~tid:th.Thread.tid ~lock:name
        in
        if detected_cycle || m.step - since >= timeout then begin
          regs.(r) <- Value.Bool false;
          th.Thread.status <- Thread.Runnable;
          advance fr
        end
        else begin
          (match th.Thread.status with
          | Thread.Blocked_lock _ -> ()
          | _ ->
              trace m
                (Trace.Ev_block
                   { step = m.step; tid = th.Thread.tid; lock = name });
              race_request m th i name;
              flight_event m ~kind:Flight_ring.k_block ~tid:th.Thread.tid
                ~arg:(-1) ~detail:name);
          th.Thread.status <-
            Thread.Blocked_lock { name; since; timeout = Some timeout }
        end
      end
  | Link.L_unlock mref -> (
      let name = as_mutex (eval fr mref) in
      match Locks.release m.locks name ~tid:th.Thread.tid with
      | Ok () ->
          race_release m th name;
          flight_event m ~kind:Flight_ring.k_release ~tid:th.Thread.tid
            ~arg:(-1) ~detail:name;
          advance fr
      | Error e -> raise (Fault e))
  | Link.L_assert { cond; msg; oracle } ->
      if Value.is_true (eval fr cond) then advance fr
      else
        let kind = if oracle then Instr.Wrong_output else Instr.Assert_fail in
        set_failure m ~kind ~site_id:None ~iid:(Some i.Link.li_iid)
          ~tid:th.Thread.tid ~msg
  | Link.L_output { fmt; args } ->
      let text = render_output fmt (eval_arg_list fr args) in
      m.outputs <- text :: m.outputs;
      m.stats.outputs <- m.stats.outputs + 1;
      trace m (Trace.Ev_output { step = m.step; tid = th.Thread.tid; text });
      advance fr
  | Link.L_call { ret; fid; fname; args } -> exec_call m th ~ret ~fid ~fname ~args
  | Link.L_spawn { reg; fid; fname; args } ->
      exec_spawn m th ~reg ~fid ~fname ~args
  | Link.L_join t -> (
      match eval fr t with
      | Value.Tid tid -> (
          match (thread m tid).Thread.status with
          | Thread.Done | Thread.Failed ->
              (match m.race with
              | None -> ()
              | Some p ->
                  p.Race_probe.rp_join ~step:m.step ~tid:th.Thread.tid
                    ~joined:tid);
              th.Thread.status <- Thread.Runnable;
              advance fr
          | _ -> th.Thread.status <- Thread.Blocked_join tid)
      | v -> raise (Fault ("join of a non-thread value " ^ Value.to_string v)))
  | Link.L_sleep n ->
      let n =
        if m.config.perturb_timing && n > 0 then
          Random.State.int (Sched.rng m.sched) (n + 1)
        else n
      in
      th.Thread.status <- Thread.Sleeping (m.step + n);
      advance fr
  | Link.L_nop -> advance fr
  | Link.L_wait name -> (
      match th.Thread.status with
      | Thread.Blocked_event _ -> ()
      | _ ->
          trace m
            (Trace.Ev_block
               { step = m.step; tid = th.Thread.tid; lock = "event:" ^ name });
          flight_event m ~kind:Flight_ring.k_block ~tid:th.Thread.tid ~arg:1
            ~detail:name;
          th.Thread.status <-
            Thread.Blocked_event { name; since = m.step; timeout = None })
  | Link.L_timed_wait (r, name, timeout) ->
      let since =
        match th.Thread.status with
        | Thread.Blocked_event { since; _ } -> since
        | _ -> m.step
      in
      if m.step - since >= timeout then begin
        regs.(r) <- Value.Bool false;
        th.Thread.status <- Thread.Runnable;
        advance fr
      end
      else begin
        (match th.Thread.status with
        | Thread.Blocked_event _ -> ()
        | _ ->
            trace m
              (Trace.Ev_block
                 { step = m.step; tid = th.Thread.tid; lock = "event:" ^ name });
            flight_event m ~kind:Flight_ring.k_block ~tid:th.Thread.tid ~arg:1
              ~detail:name);
        th.Thread.status <-
          Thread.Blocked_event { name; since; timeout = Some timeout }
      end
  | Link.L_notify name ->
      Hashtbl.iter
        (fun _ (waiter : Thread.t) ->
          match waiter.Thread.status with
          | Thread.Blocked_event { name = n; _ } when n = name ->
              let wfr = Thread.top waiter in
              (match wfr.Thread.block.Link.lb_instrs.(wfr.Thread.idx).Link.li_op
               with
              | Link.L_timed_wait (r, _, _) ->
                  wfr.Thread.regs.(r) <- Value.truth
              | _ -> ());
              wfr.Thread.idx <- wfr.Thread.idx + 1;
              waiter.Thread.status <- Thread.Runnable;
              trace m (Trace.Ev_wake { step = m.step; tid = waiter.Thread.tid });
              (match m.race with
              | None -> ()
              | Some p ->
                  p.Race_probe.rp_wake ~step:m.step ~waker:th.Thread.tid
                    ~woken:waiter.Thread.tid)
          | _ -> ())
        m.threads;
      advance fr
  | Link.L_checkpoint id ->
      th.Thread.region_counter <- th.Thread.region_counter + 1;
      advance fr;
      th.Thread.checkpoint <-
        Some
          {
            Thread.ck_depth = Thread.depth th;
            ck_func = fr.Thread.func;
            ck_block = fr.Thread.block.Link.lb_label;
            ck_idx = fr.Thread.idx;
            ck_regs = Array.copy fr.Thread.regs;
            ck_counter = th.Thread.region_counter;
            ck_step = m.step;
          };
      Stats.hit_checkpoint m.stats id;
      trace m
        (Trace.Ev_checkpoint { step = m.step; tid = th.Thread.tid; ckpt_id = id })
  | Link.L_ptr_guard (r, p, ix) ->
      regs.(r) <- Value.Bool (Heap.valid m.heap (eval fr p) (as_int (eval fr ix)));
      advance fr
  | Link.L_try_recover { site_id; kind } ->
      trace m
        (Trace.Ev_failure_detected
           { step = m.step; tid = th.Thread.tid; site_id; kind });
      if not (try_recover m th ~site_id ~kind) then advance fr
  | Link.L_fail_stop { site_id; kind; msg } ->
      close_episode m th;
      trace m (Trace.Ev_fail_stop { step = m.step; tid = th.Thread.tid; site_id });
      set_failure m ~kind ~site_id:(Some site_id) ~iid:(Some i.Link.li_iid)
        ~tid:th.Thread.tid ~msg

let exec_terminator m (th : Thread.t) =
  let fr = Thread.top th in
  match fr.Thread.block.Link.lb_term with
  | Link.L_jump i ->
      fr.Thread.block <- fr.Thread.func.Link.lf_blocks.(i);
      fr.Thread.idx <- 0
  | Link.L_branch (c, t, f) ->
      let taken, other = if Value.is_true (eval fr c) then (t, f) else (f, t) in
      if th.Thread.recovering <> None then
        note_branch_taken m th fr ~taken_idx:taken ~other_idx:other;
      fr.Thread.block <- fr.Thread.func.Link.lf_blocks.(taken);
      fr.Thread.idx <- 0
  | Link.L_return v ->
      let value = Option.map (eval fr) v in
      do_return m th value
  | Link.L_exit ->
      th.Thread.status <- Thread.Done;
      remove_live m th;
      m.outcome <- Some Outcome.Success

(* ------------------------------------------------------------------ *)
(* The scheduler loop                                                  *)
(* ------------------------------------------------------------------ *)

let eligible m (th : Thread.t) =
  match th.Thread.status with
  | Thread.Runnable -> true
  | Thread.Sleeping until -> m.step >= until
  | Thread.Blocked_lock { name; since; timeout } ->
      Locks.is_free m.locks name
      || (match timeout with Some t -> m.step - since >= t | None -> false)
      || (m.config.deadlock_detection = Wait_graph
         && timeout <> None
         && in_wait_cycle m ~tid:th.Thread.tid ~lock:name)
  | Thread.Blocked_event { since; timeout; _ } -> (
      (* notifies wake the thread eagerly; only timeouts need polling *)
      match timeout with Some t -> m.step - since >= t | None -> false)
  | Thread.Blocked_join tid -> (
      match (thread m tid).Thread.status with
      | Thread.Done | Thread.Failed -> true
      | _ -> false)
  | Thread.Done | Thread.Failed -> false

let run_thread_step m (th : Thread.t) =
  let tid = th.Thread.tid in
  (* A sleeper simply wakes; blocked threads re-execute their blocking
     instruction, which inspects and updates the status itself (notably the
     [since] timestamp of a timed lock must survive rescheduling). *)
  (match th.Thread.status with
  | Thread.Sleeping _ ->
      trace m (Trace.Ev_wake { step = m.step; tid });
      th.Thread.status <- Thread.Runnable
  | _ -> ());
  m.stats.instrs <- m.stats.instrs + 1;
  if m.trace <> None then trace m (Trace.Ev_schedule { step = m.step; tid });
  let fr = Thread.top th in
  let instrs = fr.Thread.block.Link.lb_instrs in
  let at_instr = fr.Thread.idx < Array.length instrs in
  if m.config.profile_sites && at_instr then
    Stats.hit_iid m.stats instrs.(fr.Thread.idx).Link.li_iid;
  (match m.prof with
  | None -> ()
  | Some p ->
      let stack =
        List.map
          (fun (f : Thread.frame) -> f.Thread.func.Link.lf_qname)
          th.Thread.stack
      in
      let at_ckpt =
        at_instr
        &&
        match instrs.(fr.Thread.idx).Link.li_op with
        | Link.L_checkpoint _ -> true
        | _ -> false
      in
      let cls = if at_ckpt then Profile.Checkpoint else Profile.Normal in
      p.Profile.p_step ~step:m.step ~tid ~stack
        ~block:fr.Thread.block.Link.lb_label_name ~cls);
  (* Remember where the thread stands before executing: on a fault, the
     crash report carries the faulting instruction — exactly what a user
     hands to fix mode (§3.1.2). *)
  let at_iid = if at_instr then instrs.(fr.Thread.idx).Link.li_iid else -1 in
  try
    if at_instr then exec_instr m th instrs.(fr.Thread.idx)
    else exec_terminator m th
  with Fault msg ->
    (* An unrecovered runtime fault: segmentation fault or an equivalent
       hardware-level failure of this thread, which takes the program
       down. *)
    close_episode m th;
    set_failure m ~kind:Instr.Seg_fault ~site_id:None
      ~iid:(if at_iid < 0 then None else Some at_iid)
      ~tid ~msg

(** Run one scheduler step. Returns [false] when the program has finished
    (successfully or not). *)
let step m =
  match m.outcome with
  | Some _ -> false
  | None ->
      if m.live_n = 0 then begin
        m.outcome <- Some Outcome.Success;
        false
      end
      else begin
        let n = m.live_n in
        let rn = ref 0 in
        for i = 0 to n - 1 do
          if eligible m m.live.(i) then begin
            m.ready.(!rn) <- i;
            incr rn
          end
        done;
        (if !rn = 0 then begin
           (* Threads that will become eligible as virtual time passes:
              sleepers, and lock waiters with a pending timeout. *)
           let waiting_on_time = ref false in
           for i = 0 to n - 1 do
             match m.live.(i).Thread.status with
             | Thread.Sleeping _
             | Thread.Blocked_lock { timeout = Some _; _ }
             | Thread.Blocked_event { timeout = Some _; _ } ->
                 waiting_on_time := true
             | _ -> ()
           done;
           if !waiting_on_time then begin
             (* Everyone is asleep or waiting: let virtual time pass. *)
             (match m.prof with
             | None -> ()
             | Some p -> p.Profile.p_idle ~step:m.step);
             m.step <- m.step + 1;
             m.stats.idle <- m.stats.idle + 1;
             m.stats.steps <- m.stats.steps + 1
           end
           else
             m.outcome <-
               Some (Outcome.Hang { step = m.step; blocked = live_threads m })
         end
         else begin
           let k =
             Sched.choose_idx m.sched
               ~tid_of:(fun j -> m.live.(m.ready.(j)).Thread.tid)
               !rn
           in
           (match m.flight with
           | None -> ()
           | Some fl ->
               let tid = m.live.(m.ready.(k)).Thread.tid in
               let p = Flight_ring.prev fl in
               let preemptive =
                 tid <> p && p >= 0
                 &&
                 (* the recorder's rule: the switch is preemptive only if
                    the previously running thread was still eligible *)
                 let found = ref false in
                 for j = 0 to !rn - 1 do
                   if m.live.(m.ready.(j)).Thread.tid = p then found := true
                 done;
                 !found
               in
               Flight_ring.push fl tid ~preemptive);
           run_thread_step m m.live.(m.ready.(k));
           m.step <- m.step + 1;
           m.stats.steps <- m.stats.steps + 1
         end);
        m.outcome = None
      end

(** Run to completion (or until the fuel runs out). *)
let run m =
  let rec go () =
    if m.step >= m.config.fuel then begin
      m.outcome <- Some (Outcome.Fuel_exhausted m.step);
      Outcome.Fuel_exhausted m.step
    end
    else if step m then go ()
    else Option.value ~default:Outcome.Success m.outcome
  in
  go ()

(** Convenience: build a machine and run it. *)
let run_program ?config ?meta prog =
  let m = create ?config ?meta prog in
  let outcome = run m in
  (m, outcome)

(* ------------------------------------------------------------------ *)
(* Whole-machine snapshots                                             *)
(* ------------------------------------------------------------------ *)

(* These exist for the *baseline* recovery schemes of Fig 4's right end
   (traditional whole-program checkpoint/rollback): they copy every thread,
   the heap, the globals and the locks. ConAir itself never needs them —
   that is its whole point. *)

type snapshot = {
  s_globals : (string, Value.t) Hashtbl.t;
  s_heap : Heap.t;
  s_locks : Locks.t;
  s_threads : (int * Thread.t) list;
  s_next_tid : int;
  s_step : int;
  s_outputs : string list;
}

let copy_frame (fr : Thread.frame) =
  {
    fr with
    Thread.stack_vars = Option.map Hashtbl.copy fr.Thread.stack_vars;
    regs = Array.copy fr.Thread.regs;
  }

let copy_thread (th : Thread.t) =
  {
    th with
    Thread.stack = List.map copy_frame th.Thread.stack;
    retries = Hashtbl.copy th.Thread.retries;
  }

let snapshot m : snapshot =
  {
    s_globals = Hashtbl.copy m.globals;
    s_heap = Heap.snapshot m.heap;
    s_locks = Locks.snapshot m.locks;
    s_threads =
      Hashtbl.fold (fun tid th acc -> (tid, copy_thread th) :: acc) m.threads [];
    s_next_tid = m.next_tid;
    s_step = m.step;
    s_outputs = m.outputs;
  }

(** Restore [m] to [s]. The statistics keep accumulating across restores
    (lost work is real work); the scheduler can be re-seeded by the caller
    so the retried execution explores a different interleaving. *)
let restore m (s : snapshot) =
  Hashtbl.reset m.globals;
  Hashtbl.iter (Hashtbl.replace m.globals) s.s_globals;
  Hashtbl.reset (Heap.blocks_table m.heap);
  let heap_copy = Heap.snapshot s.s_heap in
  Hashtbl.iter
    (Hashtbl.replace (Heap.blocks_table m.heap))
    (Heap.blocks_table heap_copy);
  Heap.set_next m.heap (Heap.next_id heap_copy);
  Hashtbl.reset m.locks;
  let locks_copy = Locks.snapshot s.s_locks in
  Hashtbl.iter (Hashtbl.replace m.locks) locks_copy;
  Hashtbl.reset m.threads;
  List.iter (fun (tid, th) -> Hashtbl.replace m.threads tid (copy_thread th))
    s.s_threads;
  m.next_tid <- s.s_next_tid;
  (* Virtual time is wall-clock: a rollback restores *state*, not time, so
     sleep deadlines captured in the snapshot keep their absolute meaning
     and blocked threads eventually make progress across restores. *)
  m.step <- max m.step s.s_step;
  m.outputs <- s.s_outputs;
  m.outcome <- None;
  rebuild_live m

(** Swap the scheduling policy and (optionally) enable timing perturbation
    — used by baselines to explore a different interleaving after a
    rollback or restart. *)
let reseed ?(perturb = false) m policy =
  let fresh = Sched.create policy in
  fresh.Sched.cursor <- m.sched.Sched.cursor;
  {
    m with
    sched = fresh;
    config = { m.config with perturb_timing = m.config.perturb_timing || perturb };
  }
