(* Scoped installation of the per-run observation hooks.

   Every engine carries the same five hook slots: a trace sink, a
   cost-profiler probe, a race-detector probe, and the scheduler's
   record tap / replay feed. Before this module each caller installed
   them by hand ([set_trace] / [set_profile] / [Recorder.attach] / ...)
   and was responsible for uninstalling them afterwards — which nobody
   did on the exception paths, so a run that died mid-way could leave a
   feed attached to a scheduler that outlived it.

   [with_installed] is the one scoped entry point: it installs exactly
   the hooks the caller passes, runs the body, and clears all five slots
   on the way out — normal return or exception — via [Fun.protect]. The
   engines themselves stay hook-agnostic: they expose a [target] (the
   five setters bundled) and never manage hook lifetime. *)

type target = {
  ht_trace : Trace.sink option -> unit;
  ht_profile : Profile.probe option -> unit;
  ht_race : Race_probe.probe option -> unit;
  ht_sched : Sched.t;
}

let clear t =
  t.ht_trace None;
  t.ht_profile None;
  t.ht_race None;
  Sched.set_tap t.ht_sched None;
  Sched.set_feed t.ht_sched None

let with_installed t ?trace ?profile ?race ?tap ?feed f =
  (match trace with None -> () | Some s -> t.ht_trace (Some s));
  (match profile with None -> () | Some p -> t.ht_profile (Some p));
  (match race with None -> () | Some p -> t.ht_race (Some p));
  (match tap with None -> () | Some g -> Sched.set_tap t.ht_sched (Some g));
  (match feed with None -> () | Some g -> Sched.set_feed t.ht_sched (Some g));
  Fun.protect ~finally:(fun () -> clear t) f
