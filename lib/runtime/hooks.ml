(* Per-run observation hooks, bundled.

   Every engine carries the same six hook slots: a trace sink, a
   cost-profiler probe, a race-detector probe, the scheduler's
   record tap / replay feed, and the always-on flight-recorder ring.
   Historically callers installed them by hand after [create]
   ([set_trace] / [set_profile] / [Recorder.attach] /
   ...) and were responsible for uninstalling them afterwards — which
   nobody did on the exception paths, and which made two in-process runs
   race for the same mutable slots when they shared helper code.

   The primary API is now the [bundle]: an immutable record of the six
   optional hooks that a caller hands to [Machine.create] /
   [Ref_machine.create] / [Block_machine.create] / [Engine.create]. The
   hooks are part of the machine from its first step, they are private
   to that machine, and there is nothing to uninstall — a machine is
   never shared between runs, so concurrent in-process jobs cannot fight
   over hook state.

   The flight slot is special: unlike the other five it does not force
   the block engine off its compiled window fast path — windows account
   their decisions in bulk (see [Flight_ring.push_run]), which is what
   makes the recorder cheap enough to leave on everywhere.

   [with_installed] survives as a compatibility shim for the scoped
   post-create style (and for the rare self-referential hook that needs
   the machine in scope before it can be built — see [install]). *)

type target = {
  ht_trace : Trace.sink option -> unit;
  ht_profile : Profile.probe option -> unit;
  ht_race : Race_probe.probe option -> unit;
  ht_flight : Flight_ring.t option -> unit;
  ht_sched : Sched.t;
}

type bundle = {
  hb_trace : Trace.sink option;
  hb_profile : Profile.probe option;
  hb_race : Race_probe.probe option;
  hb_flight : Flight_ring.t option;
  hb_tap : (chosen:int -> eligible:int list -> unit) option;
  hb_feed : (eligible:int list -> int) option;
}

let none =
  {
    hb_trace = None;
    hb_profile = None;
    hb_race = None;
    hb_flight = None;
    hb_tap = None;
    hb_feed = None;
  }

let bundle ?trace ?profile ?race ?flight ?tap ?feed () =
  { hb_trace = trace; hb_profile = profile; hb_race = race;
    hb_flight = flight; hb_tap = tap; hb_feed = feed }

let is_none b =
  b.hb_trace = None && b.hb_profile = None && b.hb_race = None
  && b.hb_flight = None && b.hb_tap = None && b.hb_feed = None

(* Only overwrite slots the bundle actually carries: [install] is also
   the escape hatch for self-referential hooks (a feed that snapshots
   the machine it steers), which are built after [create] and must not
   clobber hooks the bundle installed at create time. *)
let install t b =
  (match b.hb_trace with None -> () | Some _ -> t.ht_trace b.hb_trace);
  (match b.hb_profile with None -> () | Some _ -> t.ht_profile b.hb_profile);
  (match b.hb_race with None -> () | Some _ -> t.ht_race b.hb_race);
  (match b.hb_flight with None -> () | Some _ -> t.ht_flight b.hb_flight);
  (match b.hb_tap with None -> () | Some _ -> Sched.set_tap t.ht_sched b.hb_tap);
  match b.hb_feed with
  | None -> ()
  | Some _ -> Sched.set_feed t.ht_sched b.hb_feed

let clear t =
  t.ht_trace None;
  t.ht_profile None;
  t.ht_race None;
  t.ht_flight None;
  Sched.set_tap t.ht_sched None;
  Sched.set_feed t.ht_sched None

let with_installed t ?trace ?profile ?race ?flight ?tap ?feed f =
  install t (bundle ?trace ?profile ?race ?flight ?tap ?feed ());
  Fun.protect ~finally:(fun () -> clear t) f
