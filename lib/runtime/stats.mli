(** Execution statistics: the raw material of Tables 3, 5, 6 and 7. *)

(** One completed recovery: from the first rollback for a failure until
    the thread made it past the failure site. *)
type episode = {
  ep_site_id : int;
  ep_tid : int;
  ep_start : int;
  ep_end : int;
  ep_retries : int;
}

val episode_duration : episode -> int

type t = {
  mutable steps : int;  (** scheduler steps, including idle ticks *)
  mutable instrs : int;  (** instructions actually executed *)
  mutable idle : int;
  mutable checkpoints : int;  (** dynamic reexecution points (Table 5) *)
  mutable rollbacks : int;
  mutable compensated_locks : int;
  mutable compensated_blocks : int;
  mutable episodes : episode list;  (** newest first *)
  mutable tracecheck_violations : int;
  mutable outputs : int;
  ckpt_hits : (int, int) Hashtbl.t;
      (** executions per checkpoint id — Table 6's dynamic split *)
  iid_hits : (int, int) Hashtbl.t;
      (** executions per instruction id, populated only under
          [Machine.config.profile_sites] — the ConSeq-style profile *)
}

val create : unit -> t

val episodes_chronological : t -> episode list
(** [episodes] in execution order (the field itself is an accumulation
    list, newest first). Every user-facing consumer — pretty-printing,
    reports, span building — should read episodes through this. *)

val hit_checkpoint : t -> int -> unit
val ckpt_hits_of : t -> int -> int
val hit_iid : t -> int -> unit
val iid_hits_of : t -> int -> int
val total_retries : t -> int

val max_recovery_time : t -> int
(** Duration of the longest recovery episode — Table 7's "Recovery Time"
    in virtual steps. *)

val mean_recovery_time : t -> float
(** Mean recovery-episode duration in virtual steps; [0.] with no
    episodes. *)

val pp : Format.formatter -> t -> unit

val pp_episode : Format.formatter -> episode -> unit

val pp_episodes : Format.formatter -> t -> unit
(** The completed recovery episodes, one per line, in execution order. *)
