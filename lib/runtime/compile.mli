(** The block-compilation ("threaded code") pass over [Link]'s output.

    Each linked instruction becomes one OCaml closure with operand
    decoding, callee resolution, jump-target resolution and
    fault-message rendering done at compile time, and the closures
    tail-call each other: [cb_chain.(i)] is the fused straight-line run
    from index [i] (links share tails, so compilation stays linear in
    the block size). Control transfers — jumps, branches, calls,
    returns — chain straight into their target block's compiled code
    whenever the window's step budget ([Machine.t]'s [wbound] field,
    owned by [Block_machine]) covers the target's worst-case run, so a
    long single-threaded stretch executes closure-to-closure with no
    driver dispatch at all.

    Step accounting is batched per straight-line segment: the entry
    closure of a run of fault-free-by-construction-or-rollback links
    adds the whole segment's length to [m.step] up front, and the
    member closures touch no counters at all. If a member faults at
    slot [k], the raising site first subtracts the not-yet-retired
    tail of the batch and parks [fr.idx] at [k], so the counters and
    frame an observer sees are bit-identical to one-at-a-time
    counting. Terminators count their own single step as they execute.

    Instructions that can never affect another thread's eligibility
    compile to real code; schedulable ones (lock/unlock, spawn/join,
    sleep, wait/notify, recovery, fail-stop and [exit]) are stoppers
    that send the driver through the generic [Machine.run_thread_step]
    path. The runs between stoppers are what [Block_machine] retires
    without consulting the scheduler.

    Closures replicate [Machine.exec_instr] bit-for-bit — including
    operand evaluation order and fault-message bytes — and reuse
    [Machine]'s own helpers off the hot paths so the engines cannot
    drift. Faults are raised with the program point parked at the
    faulting instruction and that instruction's step not counted
    (segment batches having been rolled back as above), so the
    driver's fault arm finds the faulting frame on top with [fr.idx]
    at the faulting instruction. *)

(** Chain results, unboxed so completing a run allocates nothing. The
    chain has already counted every retired step in [m.step]. *)

val t_refresh : int
(** the program point moved and the budget gate stopped the chain:
    re-fetch frame and block, keep going *)

val t_end : int
(** the window is over (thread died, or the outcome is decided) *)

val t_sched : int
(** stopped at an unexecuted schedulable op at [fr.idx]: run it through
    the generic path *)

val t_failed : int
(** an assertion (or inline-compiled fault) failed mid-run; its step is
    already counted and the failure is already recorded *)

val t_single : int
(** a single-step ([cb_one]) closure retired its one instruction
    without moving the program point *)

type chain = Machine.t -> Thread.t -> Thread.frame -> int
(** Retires the run from the entry index under a single call, returning
    one of the [t_*] results. May raise [Machine.Fault] with the
    faulting frame on top of the thread's stack, [fr.idx] at the
    faulting instruction and that instruction's step not yet counted. *)

type cblock = {
  cb_chain : chain array;
      (** indexed by [fr.idx]; slot [length lb_instrs] is the
          terminator: the fused run from that entry point, chaining
          through control transfers while [m.wbound] allows *)
  cb_one : chain array;
      (** the same compiled links with a halting continuation: retires
          exactly one instruction ([t_single] when the program point did
          not move); control transfers still gate on [m.wbound], so a
          driver that wants strict single-stepping must floor it first *)
  cb_iids : int array;  (** per-instruction iids, for fault reports *)
  cb_need : int array;
      (** worst-case step budget the chain at this index consumes
          before its next [m.wbound] gate, counting the generic step of
          a stopping schedulable op *)
  cb_sched : bool array;
      (** true where the slot holds a schedulable-op stopper *)
}

type program = cblock array array  (** indexed [lf_id].(lb_index) *)

val compile : Link.program -> program
