(** Scheduling policy: which eligible thread runs the next instruction.
    Deterministic given the policy and seed, so every run is exactly
    reproducible. *)

type policy =
  | Round_robin  (** strict rotation among eligible threads *)
  | Random of int  (** uniform choice, seeded *)

type t = { policy : policy; rng : Random.State.t; mutable cursor : int }

val create : policy -> t

val choose : t -> int list -> int
(** Pick one of the eligible thread ids.
    @raise Invalid_argument on an empty list. *)

val choose_idx : t -> tid_of:(int -> int) -> int -> int
(** [choose_idx t ~tid_of n] picks an index in [0, n): the array-based
    equivalent of [choose] over the [n] eligible threads whose ids
    [tid_of] reports in ascending order. Identical cursor movement and
    rng consumption, so both engines see the same random stream.
    @raise Invalid_argument when [n <= 0]. *)

val rng : t -> Random.State.t
(** The runtime's randomness source (deadlock-recovery backoff, timing
    perturbation). *)
