(** Scheduling policy: which eligible thread runs the next instruction.

    Deterministic given the policy and seed, so every run is exactly
    reproducible. The seeded generator is the standard library's
    [Random.State] — the LXM generator (L64X128) on OCaml >= 5.0 —
    initialized with [Random.State.make [| seed |]]; the same state also
    feeds deadlock backoff and timing perturbation, so the random stream
    is part of the machine semantics. Everything derived from a run is
    schedule-deterministic in (program, config, policy, seed): outcomes,
    traces, cost profiles, and race-detection reports are byte-identical
    across repeated runs with the same seed, on either engine.

    The scheduler doubles as the record/replay seam: {!set_tap} installs
    an observer of every decision and {!set_feed} an override of the
    policy's choice (see [Conair_replay]). Both are [None] by default and
    cost one match per decision when off — the same zero-cost-when-off
    discipline as the trace/profile/race probes. *)

type policy =
  | Round_robin  (** strict rotation among eligible threads; rng unused *)
  | Random of int  (** uniform choice, seeded LXM ([Random.State]) *)

type t = {
  policy : policy;
  mutable rng : Random.State.t;
  mutable cursor : int;
  mutable tap : (chosen:int -> eligible:int list -> unit) option;
      (** observes every decision; install via {!set_tap} *)
  mutable feed : (eligible:int list -> int) option;
      (** overrides every decision; install via {!set_feed} *)
}

val create : policy -> t

val choose : t -> int list -> int
(** Pick one of the eligible thread ids.
    @raise Invalid_argument on an empty list. *)

val choose_idx : t -> tid_of:(int -> int) -> int -> int
(** [choose_idx t ~tid_of n] picks an index in [0, n): the array-based
    equivalent of [choose] over the [n] eligible threads whose ids
    [tid_of] reports in ascending order. Identical cursor movement and
    rng consumption, so both engines see the same random stream. With a
    tap or feed installed the eligible list is materialized and the hooks
    see exactly what the list-based engine's hooks would see.
    @raise Invalid_argument when [n <= 0]. *)

val rng : t -> Random.State.t
(** The runtime's randomness source (deadlock-recovery backoff, timing
    perturbation). *)

(** {1 Record/replay hooks}

    A [tap] observes every scheduling decision — including the
    single-eligible fast path — with the eligible tids in ascending
    order. A [feed] replaces the policy's decision; it must return a
    member of [eligible] (or raise to abort the run). A fed decision
    still consumes the policy's rng draw and cursor movement for the
    chosen thread, so the downstream random stream (deadlock backoff,
    perturbed timing) stays aligned with the original run during
    replay. *)

val set_tap : t -> (chosen:int -> eligible:int list -> unit) option -> unit
val set_feed : t -> (eligible:int list -> int) option -> unit

(** {1 Saved scheduler state}

    The rng state and rotation cursor at a point in time — the scheduler
    half of a machine snapshot, used by the time-travel inspector to seek
    within a recorded run. *)

type saved

val save : t -> saved
(** Copy the current rng state and cursor. *)

val restore : t -> saved -> unit
(** Reinstate a {!save}d state (the saved copy stays intact and can be
    restored again). Hooks are untouched. *)
