(** Scheduling policy: which eligible thread runs the next instruction.

    Deterministic given the policy and seed, so every run is exactly
    reproducible. The seeded generator is the standard library's
    [Random.State] — the LXM generator (L64X128) on OCaml >= 5.0 —
    initialized with [Random.State.make [| seed |]]; the same state also
    feeds deadlock backoff and timing perturbation, so the random stream
    is part of the machine semantics. Everything derived from a run is
    schedule-deterministic in (program, config, policy, seed): outcomes,
    traces, cost profiles, and race-detection reports are byte-identical
    across repeated runs with the same seed, on either engine. *)

type policy =
  | Round_robin  (** strict rotation among eligible threads; rng unused *)
  | Random of int  (** uniform choice, seeded LXM ([Random.State]) *)

type t = { policy : policy; rng : Random.State.t; mutable cursor : int }

val create : policy -> t

val choose : t -> int list -> int
(** Pick one of the eligible thread ids.
    @raise Invalid_argument on an empty list. *)

val choose_idx : t -> tid_of:(int -> int) -> int -> int
(** [choose_idx t ~tid_of n] picks an index in [0, n): the array-based
    equivalent of [choose] over the [n] eligible threads whose ids
    [tid_of] reports in ascending order. Identical cursor movement and
    rng consumption, so both engines see the same random stream.
    @raise Invalid_argument when [n <= 0]. *)

val rng : t -> Random.State.t
(** The runtime's randomness source (deadlock-recovery backoff, timing
    perturbation). *)
