(** The end-to-end fix pipeline: detect -> record a failing schedule ->
    minimize -> synthesize candidates ({!Patch}) -> validate through the
    three {!Gates} -> rank survivors by measured cost
    ({!Conair_obs.Overhead.cost_of}).

    Reports carry no wall-clock times and no engine names: for a given
    (program, options) the JSON is byte-identical across the three
    engines. See [docs/FIXING.md]. *)

open Conair_ir
open Conair_runtime

type options = {
  engine : Engine.t;  (** execution engine for every run of the pipeline *)
  fuel : int;
  max_retries : int;
  max_candidates : int;  (** cap on synthesized candidates *)
  sweep_seeds : int;  (** random seeds per validation sweep (gates 2+3) *)
  search_seeds : int;  (** random seeds tried when hunting a failing run *)
  minimize_budget : int;  (** ddmin candidate executions *)
  order_timeout : int;  (** virtual-time budget of order-candidate waits *)
  cost_seeds : int list;  (** seeds of the [Overhead.cost_of] measurement *)
}

val default_options : options
(** Fast engine, fuel 8_000_000, 8 candidates, 100-seed sweeps, 50
    search seeds, 2000 ddmin tests, 30_000-step order timeout. *)

type candidate = {
  c_patch : Patch.t;
  c_gates : Gates.result list;  (** replay, regression, deadlock-freedom *)
  c_survived : bool;
  c_schedules : int;  (** distinct interleaving signatures in its sweep *)
  c_cost : Conair_obs.Overhead.cost option;  (** survivors only *)
  c_overhead_pct : float option;  (** vs. the unpatched program *)
}

type t = {
  fx_app : string;
  fx_variant : string;
  fx_detection : Conair_race.Report.t;  (** merged detection findings *)
  fx_failure : string option;
      (** recorded failing outcome; [None] = no failing schedule found *)
  fx_fail_policy : string option;  (** ["round-robin"] | ["random:N"] *)
  fx_fail_decisions : int option;
  fx_minimized : (int * int) option;
      (** preemptive switches before/after minimization *)
  fx_sweep_seeds : int;
  fx_baseline : Gates.sweep option;  (** sweep of the unpatched program *)
  fx_base_cost : Conair_obs.Overhead.cost;
  fx_hardened_overhead_pct : float option;
      (** overhead of ConAir survival hardening of the unpatched program
          — the "recover forever" alternative a fix is weighed against *)
  fx_candidates : candidate list;  (** survivors first, cheapest first *)
  fx_survivors : int;
}

val run :
  ?options:options ->
  ?accept:(string list -> bool) ->
  app:string ->
  variant:string ->
  Program.t ->
  t
(** The whole pipeline on one program. [accept] is the output oracle of
    apps whose bug manifests as wrong output rather than a failed
    assertion. Never raises on a clean program: with no failing schedule
    found the report simply carries no candidates. *)

val to_json : t -> Conair_obs.Json.t
(** The ["fix_report"] document — deterministic, engine-independent. *)

val render : t -> string
