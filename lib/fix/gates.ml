(* The three validation gates every candidate patch must pass (see
   docs/FIXING.md):

   1. replay — the recorded failing schedule, recast as context-switch
      directives and driven through the divergence-safe directed feed
      against the *patched* program, must now succeed (and, under an
      output oracle, produce accepted outputs);

   2. regression — a multi-seed sweep (round-robin plus N seeded random
      schedules, the campaign fuzzer's vocabulary) must show no failing
      or hanging run and no rejected output anywhere;

   3. deadlock-freedom — the same sweep runs under the race detector's
      lock-order lens; the candidate may keep the lock-order cycles the
      buggy program already had, but must not mint new ones
      (Report.new_cycles against a baseline sweep of the original
      program).

   Gates 2 and 3 share one detector-instrumented sweep per candidate.
   Everything reported here is deterministic in (program, config,
   seeds): counts come from the engines' differential-guaranteed
   statistics and signatures from Obs.Coverage, so gate results are
   byte-identical across the ref/fast/block engines. *)

open Conair_ir
open Conair_runtime
module Driver = Conair_replay.Driver
module Log = Conair_replay.Schedule_log
module Detect = Conair_race.Detect
module Report = Conair_race.Report
module Coverage = Conair_obs.Coverage

type result = { g_gate : string; g_passed : bool; g_detail : string }

(* ---- gate 1: directed replay of the failing schedule -------------- *)

let replay_gate ?(engine = Engine.Fast) ?accept ~log program : result =
  let rb = Driver.replay_directed ~engine ~program log in
  let ok_outcome = Outcome.is_success rb.Driver.rb_outcome in
  let ok_outputs =
    match accept with None -> true | Some f -> f rb.Driver.rb_outputs
  in
  let detail =
    if not ok_outcome then
      Printf.sprintf "failing schedule still fails: %s"
        (Outcome.to_string rb.Driver.rb_outcome)
    else if not ok_outputs then "failing schedule now succeeds but outputs rejected"
    else
      Printf.sprintf "failing schedule passes (%d instrs)"
        rb.Driver.rb_stats.Stats.instrs
  in
  { g_gate = "replay"; g_passed = ok_outcome && ok_outputs; g_detail = detail }

(* ---- the shared sweep (gates 2 and 3) ----------------------------- *)

type sweep = {
  sw_runs : int;
  sw_failures : int;  (* failed / hung / fuel-exhausted runs *)
  sw_rejected : int;  (* successful runs whose outputs the oracle rejects *)
  sw_signatures : int;  (* distinct interleaving signatures exercised *)
  sw_cycle_keys : string list;  (* union of lock-order cycle keys, sorted *)
  sw_first_failure : string option;
}

let sweep ?(engine = Engine.Fast) ?accept ~config ~seeds (p : Program.t) :
    sweep =
  let failures = ref 0 and rejected = ref 0 in
  let sigs = Hashtbl.create 64 in
  let cycles = Hashtbl.create 8 in
  let first = ref None in
  let one policy =
    let det = Detect.create () in
    let rc = Conair_replay.Recorder.create () in
    let m =
      Engine.create
        ~config:{ config with Machine.policy }
        ~hooks:
          (Hooks.bundle ~race:(Detect.probe det)
             ~tap:(Conair_replay.Recorder.tap rc) ())
        engine p
    in
    let outcome = Engine.run m in
    let s =
      Coverage.signature ~context:"fix-sweep"
        ~decisions:(Conair_replay.Recorder.decisions rc)
        ~preemptions:(Conair_replay.Recorder.preemptions rc)
        ()
    in
    Hashtbl.replace sigs s ();
    let report = Detect.report det in
    List.iter
      (fun c -> Hashtbl.replace cycles (Report.cycle_key c) ())
      report.Report.cycles;
    if not (Outcome.is_success outcome) then begin
      incr failures;
      if !first = None then first := Some (Outcome.to_string outcome)
    end
    else
      match accept with
      | Some f when not (f (Engine.outputs m)) ->
          incr rejected;
          if !first = None then first := Some "outputs rejected"
      | _ -> ()
  in
  one Sched.Round_robin;
  for s = 1 to seeds do
    one (Sched.Random s)
  done;
  {
    sw_runs = seeds + 1;
    sw_failures = !failures;
    sw_rejected = !rejected;
    sw_signatures = Hashtbl.length sigs;
    sw_cycle_keys = Hashtbl.fold (fun k () acc -> k :: acc) cycles [] |> List.sort compare;
    sw_first_failure = !first;
  }

(* ---- gate 2: no regression across the sweep ----------------------- *)

let regression_gate (sw : sweep) : result =
  let passed = sw.sw_failures = 0 && sw.sw_rejected = 0 in
  let detail =
    Printf.sprintf "%d runs, %d failures, %d rejected outputs, %d schedules%s"
      sw.sw_runs sw.sw_failures sw.sw_rejected sw.sw_signatures
      (match sw.sw_first_failure with
      | Some f when not passed -> Printf.sprintf " (first: %s)" f
      | _ -> "")
  in
  { g_gate = "regression"; g_passed = passed; g_detail = detail }

(* ---- gate 3: no new lock-order cycles ----------------------------- *)

let deadlock_gate ~(baseline : sweep) (sw : sweep) : result =
  let seen = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace seen k ()) baseline.sw_cycle_keys;
  let fresh = List.filter (fun k -> not (Hashtbl.mem seen k)) sw.sw_cycle_keys in
  let detail =
    match fresh with
    | [] ->
        Printf.sprintf "no new lock-order cycles (%d pre-existing)"
          (List.length baseline.sw_cycle_keys)
    | ks -> Printf.sprintf "new lock-order cycles: %s" (String.concat ", " ks)
  in
  { g_gate = "deadlock-freedom"; g_passed = fresh = []; g_detail = detail }

let result_json (r : result) : Conair_obs.Json.t =
  let module Json = Conair_obs.Json in
  Json.Obj
    [
      ("gate", Json.String r.g_gate);
      ("passed", Json.Bool r.g_passed);
      ("detail", Json.String r.g_detail);
    ]
