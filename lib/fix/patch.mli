(** Candidate-patch synthesis over Mir.

    From a race/deadlock report, a small ordered grammar of candidate
    rewrites (each a [Transform.Rewrite] pass, so original instruction
    ids survive):

    - the {b lock ladder} for atomicity violations — a fresh mutex at
      three widening extents: each racy access individually (rung 0),
      the first-to-last access span per block (rung 1), the whole
      enclosing block (rung 2). The synthesizer "walks outward" by
      emitting the wider rungs as further candidates;
    - {b order enforcement} for order violations — [Notify] after one
      access, [Timed_wait] before the other, in both directions (the
      wrong one is rejected by the gates);
    - {b lock fusion} for lock-order cycles — every acquisition of a
      cycle lock becomes one fresh fused mutex, nested re-acquisitions
      become [Nop];
    - a {b combined} candidate when a report has both races and cycles.

    Synthesis is purely static: every candidate is merely plausible and
    must survive the three {!Gates} to be reported as a fix. *)

open Conair_ir
module Report = Conair_race.Report

type strategy = Lock_access | Lock_span | Lock_block | Order | Fuse | Combined

val strategy_name : strategy -> string

type t = {
  p_id : string;  (** ["strategy:target"], unique within a synthesis run *)
  p_strategy : strategy;
  p_rung : int;  (** widening step within the strategy (lock ladder) *)
  p_target : string;  (** racy address / cycle key the candidate attacks *)
  p_sync : string list;  (** fresh mutexes/events the patch introduces *)
  p_edits : string list;  (** human-readable edit list, deterministic *)
  p_region_local : bool;
      (** the protected extent lies inside the racy access's idempotent
          region ({!Conair_analysis.Region.covers_iids}) — the new
          critical section is no wider than what ConAir re-executes *)
  p_program : Program.t;  (** the patched program, [Validate]-clean *)
}

val fix_mutex : string
(** The fresh mutex name lock-ladder candidates introduce. *)

val fuse_mutex : string
(** The fresh mutex name lock-fusion candidates introduce. *)

val fix_event : string
(** The fresh event name order candidates introduce. *)

val synthesize :
  ?max_candidates:int ->
  ?order_timeout:int ->
  Program.t ->
  Report.t ->
  t list
(** All candidates for the report's findings, deduplicated (by edit
    list), validated, and capped at [max_candidates] (default 8).
    [order_timeout] (default 30_000 virtual steps) bounds the waits of
    order candidates so a wrong-direction candidate degrades to a
    timeout instead of a hang. Deterministic in (program, report). *)
