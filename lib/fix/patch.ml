(* Candidate-patch synthesis over Mir (see docs/FIXING.md).

   From a race/deadlock report we derive a small, ordered grammar of
   candidate rewrites, each expressed as a Transform.Rewrite pass so the
   patched program keeps every original instruction id:

   - the lock ladder, for atomicity violations: protect the racy
     accesses with a fresh mutex at three widening extents — each access
     individually (rung 0), the first-to-last access span per block
     (rung 1), the whole enclosing block (rung 2). Narrow extents are
     tried first and the synthesizer "walks outward" simply by emitting
     the wider rungs as further candidates;

   - order enforcement, for order violations: a [Notify] after one
     access and a [Timed_wait] before the other, in both directions —
     the wrong direction times out or still fails and is rejected by the
     validation gates, so we need not guess which access must go first;

   - lock fusion, for lock-order cycles: every acquisition of a lock in
     the cycle becomes an acquisition of one fresh fused mutex (nested
     re-acquisitions become [Nop] — the runtime's mutexes are
     non-reentrant), eliminating the inversion by construction;

   - a combined candidate when a report carries both races and cycles.

   Synthesis is purely static and makes no claim of correctness: every
   candidate here is merely *plausible* and must survive the three
   validation gates (Gates / Pipeline) to be reported as a fix. *)

open Conair_ir
module Rewrite = Conair_transform.Rewrite
module Region = Conair_analysis.Region
module Site = Conair_analysis.Site
module Report = Conair_race.Report
module Race_probe = Conair_runtime.Race_probe
module Label = Ident.Label
module Reg = Ident.Reg

type strategy = Lock_access | Lock_span | Lock_block | Order | Fuse | Combined

let strategy_name = function
  | Lock_access -> "lock-access"
  | Lock_span -> "lock-span"
  | Lock_block -> "lock-block"
  | Order -> "order"
  | Fuse -> "fuse-locks"
  | Combined -> "combined"

type t = {
  p_id : string;  (* "strategy:target", unique within a synthesis run *)
  p_strategy : strategy;
  p_rung : int;  (* widening step within the strategy (lock ladder) *)
  p_target : string;  (* racy address / cycle key the candidate attacks *)
  p_sync : string list;  (* fresh mutexes/events the patch introduces *)
  p_edits : string list;  (* human-readable edit list, deterministic *)
  p_region_local : bool;
      (* the protected extent lies inside the racy access's idempotent
         region, i.e. the new critical section is no wider than what
         ConAir would re-execute on recovery *)
  p_program : Program.t;  (* the patched program, Validate-clean *)
}

let fix_mutex = "__fix_m"
let fuse_mutex = "__fix_f"
let fix_event = "__fix_e"
let fix_reg = Reg.v "__fix_ok"
let mutex_ref name = Instr.Const (Value.Mutex name)

let with_mutex name (p : Program.t) =
  if List.mem name p.Program.mutexes then p
  else { p with Program.mutexes = p.Program.mutexes @ [ name ] }

(* ---- locating the racy accesses ---------------------------------- *)

(* Every static access to a racy address. Named globals are located
   statically (every instruction reading or writing the global); for
   dynamic addresses (heap cells, stack slots) only the two reported
   access instructions are known. *)
let access_iids (p : Program.t) (r : Report.race) =
  let reported =
    [ r.Report.rc_prev.Report.ac_iid; r.Report.rc_curr.Report.ac_iid ]
  in
  let iids =
    match r.Report.rc_addr with
    | Race_probe.A_global g ->
        let hits = ref [] in
        Program.iter_funcs p (fun f ->
            Func.iter_instrs f (fun _ i ->
                let touches =
                  List.exists (function
                    | Instr.Global g' -> String.equal g g'
                    | Instr.Stack _ -> false)
                in
                if
                  touches (Instr.mem_reads i.Instr.op)
                  || touches (Instr.mem_writes i.Instr.op)
                then hits := i.Instr.iid :: !hits));
        !hits @ reported
    | Race_probe.A_slot _ | Race_probe.A_cell _ | Race_probe.A_block _ ->
        reported
  in
  List.sort_uniq compare iids

(* The accesses grouped per basic block, index-sorted — the unit the
   lock ladder protects. *)
type group = {
  g_func : Func.t;
  g_block : Block.t;
  g_idxs : int list;  (* ascending instruction indexes of the accesses *)
}

let group_by_block (p : Program.t) iids =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun iid ->
      match Program.find_instr p iid with
      | None -> ()
      | Some (f, b, idx) ->
          let key = (Ident.Fname.name f.Func.name, Label.name b.Block.label) in
          (match Hashtbl.find_opt tbl key with
          | None ->
              Hashtbl.replace tbl key [ idx ];
              order := (key, f, b) :: !order
          | Some idxs -> Hashtbl.replace tbl key (idx :: idxs)))
    iids;
  List.rev_map
    (fun (key, f, b) ->
      { g_func = f; g_block = b; g_idxs = List.sort compare (Hashtbl.find tbl key) })
    !order
  |> List.sort (fun a b ->
         compare
           (Ident.Fname.name a.g_func.Func.name, Label.name a.g_block.Block.label)
           (Ident.Fname.name b.g_func.Func.name, Label.name b.g_block.Block.label))

let loc_string g idx =
  Printf.sprintf "%s/%s[%d]"
    (Ident.Fname.name g.g_func.Func.name)
    (Label.name g.g_block.Block.label)
    idx

(* ---- region locality --------------------------------------------- *)

(* Would ConAir's recovery re-execute the whole protected extent? We
   take the *last* access of the extent as a synthetic failure site,
   compute its idempotent region, and ask whether every other protected
   instruction lies inside it. The access itself is excluded: regions
   end just before their site. *)
let extent_region_local g ~first ~last =
  let cfg = Cfg.of_func g.g_func in
  let site_instr = g.g_block.Block.instrs.(last) in
  let site =
    {
      Site.site_id = 0;
      iid = site_instr.Instr.iid;
      func = g.g_func.Func.name;
      kind = Instr.Assert_fail;
      detectable = false;
      msg = "fix extent";
    }
  in
  match Region.of_site cfg site with
  | region ->
      let extent = ref [] in
      for i = first to last - 1 do
        extent := g.g_block.Block.instrs.(i).Instr.iid :: !extent
      done;
      Region.covers_iids region !extent
  | exception Invalid_argument _ -> false

(* ---- the lock ladder --------------------------------------------- *)

(* Lock/unlock insertion around the [first..last] instruction-index
   extents of each group, all under one fresh mutex. *)
let lock_candidate ~strategy ~rung ~target (p : Program.t) groups extents =
  let ed = Rewrite.create () in
  let edits = ref [] in
  let local = ref true in
  List.iter2
    (fun g (first, last) ->
      let b_first = g.g_block.Block.instrs.(first).Instr.iid in
      let b_last = g.g_block.Block.instrs.(last).Instr.iid in
      Rewrite.insert_before ed b_first [ Instr.Lock (mutex_ref fix_mutex) ];
      Rewrite.insert_after ed b_last [ Instr.Unlock (mutex_ref fix_mutex) ];
      edits :=
        Printf.sprintf "lock %s before %s; unlock after %s" fix_mutex
          (loc_string g first) (loc_string g last)
        :: !edits;
      if not (extent_region_local g ~first ~last) then local := false)
    groups extents;
  let program, _ = Rewrite.apply ed p in
  let program = with_mutex fix_mutex program in
  {
    p_id = Printf.sprintf "%s:%s" (strategy_name strategy) target;
    p_strategy = strategy;
    p_rung = rung;
    p_target = target;
    p_sync = [ fix_mutex ];
    p_edits = List.rev !edits;
    p_region_local = !local;
    p_program = program;
  }

let ladder (p : Program.t) target groups =
  let per_access =
    (* rung 0: each access individually *)
    let groups', extents =
      List.concat_map
        (fun g -> List.map (fun idx -> (g, (idx, idx))) g.g_idxs)
        groups
      |> List.split
    in
    lock_candidate ~strategy:Lock_access ~rung:0 ~target p groups' extents
  in
  let span =
    (* rung 1: first-to-last access per block *)
    let extents =
      List.map
        (fun g ->
          (List.hd g.g_idxs, List.nth g.g_idxs (List.length g.g_idxs - 1)))
        groups
    in
    lock_candidate ~strategy:Lock_span ~rung:1 ~target p groups extents
  in
  let block =
    (* rung 2: the whole enclosing block *)
    let extents =
      List.map (fun g -> (0, Array.length g.g_block.Block.instrs - 1)) groups
    in
    lock_candidate ~strategy:Lock_block ~rung:2 ~target p groups extents
  in
  [ per_access; span; block ]

(* ---- order enforcement ------------------------------------------- *)

let order_candidate ~dir ~timeout ~target (p : Program.t)
    (first : Report.access) (second : Report.access) =
  if first.Report.ac_iid = second.Report.ac_iid then None
  else
    let ed = Rewrite.create () in
    Rewrite.insert_after ed first.Report.ac_iid [ Instr.Notify fix_event ];
    Rewrite.insert_before ed second.Report.ac_iid
      [ Instr.Timed_wait (fix_reg, fix_event, timeout) ];
    let program, _ = Rewrite.apply ed p in
    Some
      {
        p_id = Printf.sprintf "order-%s:%s" dir target;
        p_strategy = Order;
        p_rung = 0;
        p_target = target;
        p_sync = [ fix_event ];
        p_edits =
          [
            Printf.sprintf "notify %s after iid %d" fix_event
              first.Report.ac_iid;
            Printf.sprintf "timed-wait %s (timeout %d) before iid %d" fix_event
              timeout second.Report.ac_iid;
          ];
        p_region_local = false;
        p_program = program;
      }

let order_pair ~timeout ~target p (r : Report.race) =
  List.filter_map
    (fun x -> x)
    [
      order_candidate ~dir:"prev-first" ~timeout ~target p r.Report.rc_prev
        r.Report.rc_curr;
      order_candidate ~dir:"curr-first" ~timeout ~target p r.Report.rc_curr
        r.Report.rc_prev;
    ]

(* ---- lock fusion ------------------------------------------------- *)

(* Rewrite every acquisition/release of a lock in [cycle] to the fused
   mutex, tracking nesting depth per function so nested re-acquisitions
   become [Nop] (the runtime's mutexes are non-reentrant). Infeasible
   when lock operands are dynamic (register-valued) or critical sections
   cross function boundaries — those shapes need data the static scan
   does not have. *)
let fuse_edits ed (p : Program.t) cycle_locks =
  let in_cycle l = List.mem l cycle_locks in
  let edits = ref [] in
  let feasible = ref true in
  Program.iter_funcs p (fun f ->
      let depth = ref 0 in
      Func.iter_instrs f (fun b i ->
          ignore b;
          match i.Instr.op with
          | Instr.Lock (Instr.Const (Value.Mutex l)) when in_cycle l ->
              (if !depth = 0 then begin
                 Rewrite.replace_op ed i.Instr.iid
                   (Instr.Lock (mutex_ref fuse_mutex));
                 edits :=
                   Printf.sprintf "fuse lock %s -> %s at iid %d" l fuse_mutex
                     i.Instr.iid
                   :: !edits
               end
               else begin
                 Rewrite.replace_op ed i.Instr.iid Instr.Nop;
                 edits :=
                   Printf.sprintf "drop nested lock %s at iid %d" l i.Instr.iid
                   :: !edits
               end);
              incr depth
          | Instr.Unlock (Instr.Const (Value.Mutex l)) when in_cycle l ->
              decr depth;
              if !depth < 0 then feasible := false
              else if !depth = 0 then begin
                Rewrite.replace_op ed i.Instr.iid
                  (Instr.Unlock (mutex_ref fuse_mutex));
                edits :=
                  Printf.sprintf "fuse unlock %s -> %s at iid %d" l fuse_mutex
                    i.Instr.iid
                  :: !edits
              end
              else begin
                Rewrite.replace_op ed i.Instr.iid Instr.Nop;
                edits :=
                  Printf.sprintf "drop nested unlock %s at iid %d" l
                    i.Instr.iid
                  :: !edits
              end
          | Instr.Lock _ | Instr.Unlock _ | Instr.Timed_lock _ ->
              (* dynamic lock operand: it may alias a cycle lock *)
              feasible := false
          | _ -> ());
      if !depth <> 0 then feasible := false);
  if !feasible then Some (List.rev !edits) else None

let fuse_candidate (p : Program.t) (c : Report.cycle) =
  let key = Report.cycle_key c in
  let ed = Rewrite.create () in
  match fuse_edits ed p c.Report.cy_locks with
  | None -> None
  | Some edits ->
      let program, _ = Rewrite.apply ed p in
      let program = with_mutex fuse_mutex program in
      Some
        {
          p_id = Printf.sprintf "fuse-locks:%s" key;
          p_strategy = Fuse;
          p_rung = 0;
          p_target = key;
          p_sync = [ fuse_mutex ];
          p_edits = edits;
          p_region_local = false;
          p_program = program;
        }

(* ---- the combined candidate -------------------------------------- *)

let combined_candidate (p : Program.t) races cycles =
  let ed = Rewrite.create () in
  let edits = ref [] in
  let ok = ref true in
  (* span-lock every distinct racy address under __fix_m *)
  List.iter
    (fun (target, groups) ->
      List.iter
        (fun g ->
          let first = List.hd g.g_idxs in
          let last = List.nth g.g_idxs (List.length g.g_idxs - 1) in
          let b_first = g.g_block.Block.instrs.(first).Instr.iid in
          let b_last = g.g_block.Block.instrs.(last).Instr.iid in
          Rewrite.insert_before ed b_first [ Instr.Lock (mutex_ref fix_mutex) ];
          Rewrite.insert_after ed b_last [ Instr.Unlock (mutex_ref fix_mutex) ];
          edits :=
            Printf.sprintf "lock %s span %s..%s (%s)" fix_mutex
              (loc_string g first) (loc_string g last) target
            :: !edits)
        groups)
    races;
  (* fuse every cycle's locks into __fix_f *)
  let cycle_locks =
    List.concat_map (fun c -> c.Report.cy_locks) cycles
    |> List.sort_uniq compare
  in
  (match fuse_edits ed p cycle_locks with
  | Some fe -> edits := List.rev_append fe !edits
  | None -> ok := false);
  if not !ok then None
  else
    let program, _ = Rewrite.apply ed p in
    let program = with_mutex fix_mutex (with_mutex fuse_mutex program) in
    Some
      {
        p_id = "combined:all";
        p_strategy = Combined;
        p_rung = 0;
        p_target = "all";
        p_sync = [ fix_mutex; fuse_mutex ];
        p_edits = List.rev !edits;
        p_region_local = false;
        p_program = program;
      }

(* ---- synthesis --------------------------------------------------- *)

let dedupe_races (report : Report.t) =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun r ->
      let k = Report.addr_string r.Report.rc_addr in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    report.Report.races

let dedupe_cycles (report : Report.t) =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun c ->
      let k = Report.cycle_key c in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    report.Report.cycles

let synthesize ?(max_candidates = 8) ?(order_timeout = 30_000)
    (p : Program.t) (report : Report.t) : t list =
  let races = dedupe_races report in
  let cycles = dedupe_cycles report in
  let race_groups =
    List.filter_map
      (fun r ->
        let target = Report.addr_string r.Report.rc_addr in
        match group_by_block p (access_iids p r) with
        | [] -> None
        | groups -> Some (r, target, groups))
      races
  in
  let cands = ref [] in
  List.iter
    (fun (r, target, groups) ->
      cands := List.rev_append (ladder p target groups) !cands;
      cands := List.rev_append (order_pair ~timeout:order_timeout ~target p r) !cands)
    race_groups;
  List.iter
    (fun c ->
      match fuse_candidate p c with
      | Some cand -> cands := cand :: !cands
      | None -> ())
    cycles;
  (if race_groups <> [] && cycles <> [] then
     let rg = List.map (fun (_, t, g) -> (t, g)) race_groups in
     match combined_candidate p rg cycles with
     | Some cand -> cands := cand :: !cands
     | None -> ());
  (* drop duplicates (identical edit lists) and anything that fails
     validation — candidates must be well-formed programs *)
  let seen = Hashtbl.create 8 in
  List.rev !cands
  |> List.filter (fun c ->
         let key = String.concat "\n" c.p_edits in
         (not (Hashtbl.mem seen key))
         && begin
              Hashtbl.replace seen key ();
              Validate.check c.p_program = []
            end)
  |> List.filteri (fun i _ -> i < max_candidates)
