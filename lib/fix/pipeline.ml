(* The end-to-end fix pipeline: detect -> record a failing schedule ->
   minimize -> synthesize candidates -> three validation gates -> rank
   survivors by measured cost. See docs/FIXING.md for the design.

   Determinism: every number in the report comes from the engines'
   differential-guaranteed statistics (instruction/step counts), from
   deterministic schedules (round-robin plus seeded random), or from
   canonical detector output — no wall-clock time, no engine names. The
   JSON is therefore byte-identical across the ref/fast/block engines
   for a given (program, options). *)

open Conair_ir
open Conair_runtime
module Plan = Conair_analysis.Plan
module Harden = Conair_transform.Harden
module Detect = Conair_race.Detect
module Report = Conair_race.Report
module Driver = Conair_replay.Driver
module Log = Conair_replay.Schedule_log
module Minimize = Conair_replay.Minimize
module Overhead = Conair_obs.Overhead
module Json = Conair_obs.Json

type options = {
  engine : Engine.t;  (* execution engine for every run of the pipeline *)
  fuel : int;
  max_retries : int;
  max_candidates : int;  (* cap on synthesized candidates *)
  sweep_seeds : int;  (* random seeds per validation sweep (gates 2+3) *)
  search_seeds : int;  (* random seeds tried when hunting a failing run *)
  minimize_budget : int;  (* ddmin candidate executions *)
  order_timeout : int;  (* virtual-time budget of order-candidate waits *)
  cost_seeds : int list;  (* seeds of the Overhead.cost_of measurement *)
}

let default_options =
  {
    engine = Engine.Fast;
    fuel = 8_000_000;
    max_retries = 1_000_000;
    max_candidates = 8;
    sweep_seeds = 100;
    search_seeds = 50;
    minimize_budget = 2000;
    order_timeout = 30_000;
    cost_seeds = [ 1; 2; 3 ];
  }

type candidate = {
  c_patch : Patch.t;
  c_gates : Gates.result list;  (* replay, regression, deadlock-freedom *)
  c_survived : bool;
  c_schedules : int;  (* distinct interleaving signatures in its sweep *)
  c_cost : Overhead.cost option;  (* survivors only *)
  c_overhead_pct : float option;  (* vs. the unpatched program *)
}

type t = {
  fx_app : string;
  fx_variant : string;
  fx_detection : Report.t;  (* merged detection findings *)
  fx_failure : string option;  (* recorded failing outcome; None = not found *)
  fx_fail_policy : string option;  (* "round-robin" | "random:N" *)
  fx_fail_decisions : int option;
  fx_minimized : (int * int) option;  (* preemptive switches before/after *)
  fx_sweep_seeds : int;
  fx_baseline : Gates.sweep option;  (* sweep of the unpatched program *)
  fx_base_cost : Overhead.cost;
  fx_hardened_overhead_pct : float option;
      (* ConAir survival hardening of the *unpatched* program — the
         "recover forever" alternative the fixed-overhead column is
         compared against *)
  fx_candidates : candidate list;  (* survivors first, cheapest first *)
  fx_survivors : int;
}

let config_of (o : options) =
  {
    Machine.default_config with
    Machine.policy = Sched.Round_robin;
    fuel = o.fuel;
    max_retries = o.max_retries;
  }

(* ---- detection ---------------------------------------------------- *)

let survival_harden p =
  match Plan.analyze p Plan.Survival with
  | Ok plan -> Some (Harden.apply plan)
  | Error _ -> None

(* Merge per-seed detection reports: first race per address, first
   cycle per key, first warning per address — in arrival order. *)
let merge_reports (reports : Report.t list) : Report.t =
  let seen = Hashtbl.create 16 in
  let once key v acc = if Hashtbl.mem seen key then acc else (Hashtbl.replace seen key (); v :: acc) in
  let races, warnings, cycles =
    List.fold_left
      (fun (rs, ws, cs) (r : Report.t) ->
        let rs =
          List.fold_left
            (fun acc x -> once ("r:" ^ Report.addr_string x.Report.rc_addr) x acc)
            rs r.Report.races
        in
        let ws =
          List.fold_left
            (fun acc x -> once ("w:" ^ Report.addr_string x.Report.w_addr) x acc)
            ws r.Report.warnings
        in
        let cs =
          List.fold_left
            (fun acc x -> once ("c:" ^ Report.cycle_key x) x acc)
            cs r.Report.cycles
        in
        (rs, ws, cs))
      ([], [], []) reports
  in
  { Report.races = List.rev races; warnings = List.rev warnings; cycles = List.rev cycles }

(* Detect on the survival-hardened program when the analysis accepts it
   (recovery keeps runs alive long enough to see more of the schedule),
   falling back to the original program otherwise. A handful of seeds:
   the HB lens does not need the bad interleaving to manifest, but some
   findings (actual deadlocks) are schedule-dependent. *)
let detect_races ~(options : options) (p : Program.t) : Report.t =
  let config = config_of options in
  let program, meta =
    match survival_harden p with
    | Some h -> (h.Harden.program, Some (Machine.meta_of_harden h))
    | None -> (p, None)
  in
  let one policy =
    let det = Detect.create () in
    let m =
      Engine.create
        ~config:{ config with Machine.policy }
        ?meta
        ~hooks:(Hooks.bundle ~race:(Detect.probe det) ())
        options.engine program
    in
    ignore (Engine.run m);
    Detect.report det
  in
  let policies =
    Sched.Round_robin
    :: List.init (min 10 options.search_seeds) (fun i -> Sched.Random (i + 1))
  in
  merge_reports (List.map one policies)

(* ---- failing-schedule search -------------------------------------- *)

let policy_string = function
  | Sched.Round_robin -> "round-robin"
  | Sched.Random s -> Printf.sprintf "random:%d" s

(* Record runs of the *original* program until one fails (or, under an
   output oracle, succeeds with rejected outputs). *)
let find_failing ~(options : options) ?accept ~ident (p : Program.t) =
  let config = config_of options in
  let is_failing (rb : Driver.result_bundle) =
    match rb.Driver.rb_outcome with
    | Outcome.Failed _ | Outcome.Hang _ -> true
    | Outcome.Success -> (
        match accept with Some f -> not (f rb.Driver.rb_outputs) | None -> false)
    | Outcome.Fuel_exhausted _ -> false
  in
  let rec go = function
    | [] -> None
    | policy :: rest ->
        let rb, log =
          Driver.record ~engine:options.engine
            ~config:{ config with Machine.policy }
            ~ident p
        in
        if is_failing rb then Some (policy, rb, log) else go rest
  in
  go
    (Sched.Round_robin
    :: List.init options.search_seeds (fun i -> Sched.Random (i + 1)))

(* ---- the pipeline ------------------------------------------------- *)

let rank_candidates cands =
  let survivors, rest = List.partition (fun c -> c.c_survived) cands in
  let by_cost a b =
    match (a.c_cost, b.c_cost) with
    | Some ca, Some cb ->
        let c = compare ca.Overhead.k_mean_instrs cb.Overhead.k_mean_instrs in
        if c <> 0 then c else compare a.c_patch.Patch.p_id b.c_patch.Patch.p_id
    | _ -> compare a.c_patch.Patch.p_id b.c_patch.Patch.p_id
  in
  List.stable_sort by_cost survivors @ rest

let run ?(options = default_options) ?accept ~app ~variant (p : Program.t) :
    t =
  let config = config_of options in
  let detection = detect_races ~options p in
  let base_cost =
    Overhead.cost_of ~config ~seeds:options.cost_seeds p
  in
  let hardened_overhead_pct =
    match survival_harden p with
    | None -> None
    | Some h ->
        let c =
          Overhead.cost_of ~config
            ~meta:(Machine.meta_of_harden h)
            ~seeds:options.cost_seeds h.Harden.program
        in
        Some (Overhead.cost_overhead_pct ~base:base_cost c)
  in
  let ident = Log.ident ~variant ~mode:"none" app in
  match find_failing ~options ?accept ~ident p with
  | None ->
      {
        fx_app = app;
        fx_variant = variant;
        fx_detection = detection;
        fx_failure = None;
        fx_fail_policy = None;
        fx_fail_decisions = None;
        fx_minimized = None;
        fx_sweep_seeds = options.sweep_seeds;
        fx_baseline = None;
        fx_base_cost = base_cost;
        fx_hardened_overhead_pct = hardened_overhead_pct;
        fx_candidates = [];
        fx_survivors = 0;
      }
  | Some (policy, rb, log) ->
      (* minimize the failing schedule; keep the raw log if ddmin cannot
         reproduce (e.g. oracle-rejected successful runs) *)
      let log, minimized =
        match
          Minimize.minimize ~max_tests:options.minimize_budget ~detect:false
            ~program:p log
        with
        | Ok mn ->
            (mn.Minimize.mn_log, Some (mn.Minimize.mn_original, mn.Minimize.mn_minimized))
        | Error _ -> (log, None)
      in
      let baseline =
        Gates.sweep ~engine:options.engine ?accept ~config
          ~seeds:options.sweep_seeds p
      in
      (* Adaptive order-candidate timeout: the recorded failing run's
         length bounds how long the enforced ordering can take to become
         available (it contains every sleep on the way to the bug), so a
         wait of twice that cannot spuriously expire — while a
         wrong-direction wait still terminates instead of hanging. *)
      let order_timeout =
        max options.order_timeout (2 * rb.Driver.rb_steps)
      in
      let candidates =
        Patch.synthesize ~max_candidates:options.max_candidates
          ~order_timeout p detection
      in
      let evaluate (patch : Patch.t) =
        let g1 =
          Gates.replay_gate ~engine:options.engine ?accept ~log
            patch.Patch.p_program
        in
        let sw =
          Gates.sweep ~engine:options.engine ?accept ~config
            ~seeds:options.sweep_seeds patch.Patch.p_program
        in
        let g2 = Gates.regression_gate sw in
        let g3 = Gates.deadlock_gate ~baseline sw in
        let survived = g1.Gates.g_passed && g2.Gates.g_passed && g3.Gates.g_passed in
        let cost =
          if survived then
            Some
              (Overhead.cost_of ~config ~seeds:options.cost_seeds
                 patch.Patch.p_program)
          else None
        in
        {
          c_patch = patch;
          c_gates = [ g1; g2; g3 ];
          c_survived = survived;
          c_schedules = sw.Gates.sw_signatures;
          c_cost = cost;
          c_overhead_pct =
            Option.map (Overhead.cost_overhead_pct ~base:base_cost) cost;
        }
      in
      let cands = rank_candidates (List.map evaluate candidates) in
      {
        fx_app = app;
        fx_variant = variant;
        fx_detection = detection;
        fx_failure = Some (Outcome.to_string rb.Driver.rb_outcome);
        fx_fail_policy = Some (policy_string policy);
        fx_fail_decisions = Some (Array.length log.Log.decisions);
        fx_minimized = minimized;
        fx_sweep_seeds = options.sweep_seeds;
        fx_baseline = Some baseline;
        fx_base_cost = base_cost;
        fx_hardened_overhead_pct = hardened_overhead_pct;
        fx_candidates = cands;
        fx_survivors = List.length (List.filter (fun c -> c.c_survived) cands);
      }

(* ---- report forms -------------------------------------------------- *)

let opt_json f = function None -> Json.Null | Some v -> f v

let candidate_json (c : candidate) : Json.t =
  let p = c.c_patch in
  Json.Obj
    [
      ("id", Json.String p.Patch.p_id);
      ("strategy", Json.String (Patch.strategy_name p.Patch.p_strategy));
      ("rung", Json.Int p.Patch.p_rung);
      ("target", Json.String p.Patch.p_target);
      ("sync", Json.List (List.map (fun s -> Json.String s) p.Patch.p_sync));
      ("edits", Json.List (List.map (fun s -> Json.String s) p.Patch.p_edits));
      ("region_local", Json.Bool p.Patch.p_region_local);
      ("gates", Json.List (List.map Gates.result_json c.c_gates));
      ("survived", Json.Bool c.c_survived);
      ("schedules", Json.Int c.c_schedules);
      ("cost", opt_json Overhead.cost_json c.c_cost);
      ("overhead_pct", opt_json (fun f -> Json.Float f) c.c_overhead_pct);
    ]

let sweep_json (sw : Gates.sweep) : Json.t =
  Json.Obj
    [
      ("runs", Json.Int sw.Gates.sw_runs);
      ("failures", Json.Int sw.Gates.sw_failures);
      ("rejected", Json.Int sw.Gates.sw_rejected);
      ("schedules", Json.Int sw.Gates.sw_signatures);
      ( "cycle_keys",
        Json.List (List.map (fun s -> Json.String s) sw.Gates.sw_cycle_keys) );
    ]

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("type", Json.String "fix_report");
      ("app", Json.String t.fx_app);
      ("variant", Json.String t.fx_variant);
      ( "detection",
        Json.Obj
          [
            ("races", Json.Int (List.length t.fx_detection.Report.races));
            ( "lockset_warnings",
              Json.Int (List.length t.fx_detection.Report.warnings) );
            ( "deadlock_cycles",
              Json.Int (List.length t.fx_detection.Report.cycles) );
          ] );
      ( "failing_schedule",
        match t.fx_failure with
        | None -> Json.Null
        | Some outcome ->
            Json.Obj
              [
                ("outcome", Json.String outcome);
                ( "policy",
                  opt_json (fun s -> Json.String s) t.fx_fail_policy );
                ("decisions", opt_json (fun d -> Json.Int d) t.fx_fail_decisions);
              ] );
      ( "minimized",
        opt_json
          (fun (before, after) ->
            Json.Obj
              [ ("preemptions", Json.Int before); ("minimized", Json.Int after) ])
          t.fx_minimized );
      ("sweep_seeds", Json.Int t.fx_sweep_seeds);
      ("baseline", opt_json sweep_json t.fx_baseline);
      ("base_cost", Overhead.cost_json t.fx_base_cost);
      ( "hardened_overhead_pct",
        opt_json (fun f -> Json.Float f) t.fx_hardened_overhead_pct );
      ("candidates", Json.List (List.map candidate_json t.fx_candidates));
      ( "summary",
        Json.Obj
          [
            ("candidates", Json.Int (List.length t.fx_candidates));
            ("survivors", Json.Int t.fx_survivors);
          ] );
    ]

let render (t : t) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "fix report for %s/%s\n" t.fx_app t.fx_variant;
  pf "  detection: %d races, %d lockset warnings, %d deadlock cycles\n"
    (List.length t.fx_detection.Report.races)
    (List.length t.fx_detection.Report.warnings)
    (List.length t.fx_detection.Report.cycles);
  (match (t.fx_failure, t.fx_fail_policy) with
  | Some outcome, Some policy ->
      pf "  failing schedule: %s (policy %s%s)\n" outcome policy
        (match t.fx_minimized with
        | Some (before, after) ->
            Printf.sprintf ", minimized %d -> %d preemptions" before after
        | None -> "")
  | _ -> pf "  no failing schedule found — nothing to validate against\n");
  (match t.fx_hardened_overhead_pct with
  | Some pct -> pf "  ConAir survival hardening overhead: %+.2f%%\n" pct
  | None -> ());
  List.iter
    (fun c ->
      let p = c.c_patch in
      pf "  %s %s (target %s)%s\n"
        (if c.c_survived then "[fix]" else "[rejected]")
        p.Patch.p_id p.Patch.p_target
        (if p.Patch.p_region_local then " [region-local]" else "");
      List.iter
        (fun (g : Gates.result) ->
          pf "      %-17s %s  %s\n" g.Gates.g_gate
            (if g.Gates.g_passed then "pass" else "FAIL")
            g.Gates.g_detail)
        c.c_gates;
      match c.c_overhead_pct with
      | Some pct -> pf "      overhead vs. buggy baseline: %+.2f%%\n" pct
      | None -> ())
    t.fx_candidates;
  pf "  %d/%d candidates survive all gates\n" t.fx_survivors
    (List.length t.fx_candidates);
  Buffer.contents b
