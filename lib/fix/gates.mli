(** The three validation gates of the fix pipeline.

    1. {b replay}: the recorded failing schedule, driven through the
       divergence-safe directed feed against the patched program
       ({!Conair_replay.Driver.replay_directed}), must now succeed;
    2. {b regression}: a multi-seed sweep must show no failing or
       hanging run and no oracle-rejected output;
    3. {b deadlock-freedom}: the same sweep, watched by the race
       detector's lock-order lens, must mint no lock-order cycle the
       unpatched baseline did not already have.

    Gates 2 and 3 share one detector-instrumented {!sweep} per
    candidate. All results are deterministic in (program, config,
    seeds) and byte-identical across the ref/fast/block engines. *)

open Conair_ir
open Conair_runtime

type result = { g_gate : string; g_passed : bool; g_detail : string }

val replay_gate :
  ?engine:Engine.t ->
  ?accept:(string list -> bool) ->
  log:Conair_replay.Schedule_log.t ->
  Program.t ->
  result
(** Gate 1 against the patched program. Never raises — where the patch
    makes the recording unfollowable (a thread newly blocks), control
    falls to the next eligible thread. *)

type sweep = {
  sw_runs : int;
  sw_failures : int;  (** failed / hung / fuel-exhausted runs *)
  sw_rejected : int;  (** successful runs with oracle-rejected outputs *)
  sw_signatures : int;  (** distinct interleaving signatures exercised *)
  sw_cycle_keys : string list;
      (** union of lock-order cycle keys seen, sorted *)
  sw_first_failure : string option;
}

val sweep :
  ?engine:Engine.t ->
  ?accept:(string list -> bool) ->
  config:Machine.config ->
  seeds:int ->
  Program.t ->
  sweep
(** One round-robin run plus [seeds] seeded random runs, each under the
    race detector and the schedule recorder. *)

val regression_gate : sweep -> result
(** Gate 2 over a candidate's sweep. *)

val deadlock_gate : baseline:sweep -> sweep -> result
(** Gate 3: cycle keys of the candidate's sweep not present in the
    baseline sweep of the unpatched program. *)

val result_json : result -> Conair_obs.Json.t
