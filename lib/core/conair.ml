(** ConAir: featherweight concurrency-bug recovery via single-threaded
    idempotent execution (Zhang et al., ASPLOS 2013), reimplemented for the
    Mir IR.

    The typical flow is:

    {[
      let hardened = Conair.harden_exn program Conair.Survival in
      let run = Conair.execute_hardened hardened ~policy:Round_robin in
      (* run.outcome, run.stats.rollbacks, ... *)
    ]}

    Lower-level pieces are re-exported: [Conair.Ir] (the IR and builder),
    [Conair.Analysis] (failure sites, idempotent regions, slicing,
    inter-procedural recovery), [Conair.Transform] (the hardening pass) and
    [Conair.Runtime] (the interpreter with the recovery engine). *)

module Ir = struct
  module Ident = Conair_ir.Ident
  module Value = Conair_ir.Value
  module Instr = Conair_ir.Instr
  module Block = Conair_ir.Block
  module Func = Conair_ir.Func
  module Program = Conair_ir.Program
  module Builder = Conair_ir.Builder
  module Cfg = Conair_ir.Cfg
  module Validate = Conair_ir.Validate
  module Emit = Conair_ir.Emit
  module Parse = Conair_ir.Parse
end

module Analysis = struct
  module Site = Conair_analysis.Site
  module Find_sites = Conair_analysis.Find_sites
  module Region = Conair_analysis.Region
  module Slice = Conair_analysis.Slice
  module Optimize = Conair_analysis.Optimize
  module Callgraph = Conair_analysis.Callgraph
  module Interproc = Conair_analysis.Interproc
  module Plan = Conair_analysis.Plan
  module Prune = Conair_analysis.Prune
  module Viz = Conair_analysis.Viz
end

module Transform = struct
  module Rewrite = Conair_transform.Rewrite
  module Harden = Conair_transform.Harden
  module Report = Conair_transform.Report
  module Annotate = Conair_transform.Annotate
  module Lower = Conair_transform.Lower
end

module Runtime = struct
  module Outcome = Conair_runtime.Outcome
  module Heap = Conair_runtime.Heap
  module Locks = Conair_runtime.Locks
  module Link = Conair_runtime.Link
  module Thread = Conair_runtime.Thread
  module Sched = Conair_runtime.Sched
  module Stats = Conair_runtime.Stats
  module Machine = Conair_runtime.Machine
  module Ref_machine = Conair_runtime.Ref_machine
  module Compile = Conair_runtime.Compile
  module Block_machine = Conair_runtime.Block_machine
  module Engine = Conair_runtime.Engine
  module Hooks = Conair_runtime.Hooks
  module Trace = Conair_runtime.Trace
  module Profile = Conair_runtime.Profile
  module Race_probe = Conair_runtime.Race_probe
  module Flight_ring = Conair_runtime.Flight_ring
end

module Race = struct
  module Vclock = Conair_race.Vclock
  module Report = Conair_race.Report
  module Hb = Conair_race.Hb
  module Lockset = Conair_race.Lockset
  module Lockorder = Conair_race.Lockorder
  module Detect = Conair_race.Detect
end

module Obs = struct
  module Json = Conair_obs.Json
  module Jsonl = Conair_obs.Jsonl
  module Metrics = Conair_obs.Metrics
  module Span = Conair_obs.Span
  module Report = Conair_obs.Report
  module Prof = Conair_obs.Prof
  module Overhead = Conair_obs.Overhead
  module Aggregate = Conair_obs.Aggregate
  module Coverage = Conair_obs.Coverage
  module Campaign = Conair_obs.Campaign
  module Flight = Conair_obs.Flight
end

open Conair_ir
open Conair_analysis
open Conair_runtime

(** The two usage modes of §3.1: survival mode hardens every potential
    failure site; fix mode hardens the instruction ids the user observed
    failing. *)
type mode = Plan.mode = Survival | Fix of int list

type hardened = {
  original : Program.t;
  hardened : Conair_transform.Harden.t;
  plan : Plan.t;
  report : Conair_transform.Report.t;
}

(** Run the full ConAir pipeline: failure-site identification,
    reexecution-point identification, optimization, inter-procedural
    analysis, and the code transformation. *)
let harden ?(analysis = Plan.default_options)
    ?(transform = Conair_transform.Harden.default_options) (p : Program.t)
    (mode : mode) : (hardened, string) result =
  match Plan.analyze ~options:analysis p mode with
  | Error e -> Error e
  | Ok plan ->
      let h = Conair_transform.Harden.apply ~options:transform plan in
      Ok
        {
          original = p;
          hardened = h;
          plan;
          report = Conair_transform.Report.of_harden h;
        }

let harden_exn ?analysis ?transform p mode =
  match harden ?analysis ?transform p mode with
  | Ok h -> h
  | Error e -> invalid_arg ("Conair.harden: " ^ e)

(** One program execution and everything measured about it. [machine] is
    packed per engine; use [Engine.steps] / [Engine.sched] / ... for
    engine-generic access. *)
type run = {
  outcome : Outcome.t;
  outputs : string list;
  stats : Stats.t;
  machine : Engine.machine;
}

let make_run machine outcome =
  {
    outcome;
    outputs = Engine.outputs machine;
    stats = Engine.stats machine;
    machine;
  }

let execute ?(config = Machine.default_config) ?(engine = Engine.Fast)
    (p : Program.t) : run =
  let machine, outcome = Engine.run_program ~config engine p in
  make_run machine outcome

let execute_hardened ?(config = Machine.default_config)
    ?(engine = Engine.Fast) (h : hardened) : run =
  let meta = Machine.meta_of_harden h.hardened in
  let machine, outcome =
    Engine.run_program ~config ~meta engine h.hardened.program
  in
  make_run machine outcome

(** One observed execution: the run itself plus every telemetry artifact
    the observability layer derives from it. *)
type run_report = {
  run : run;
  events : Trace.event list;
      (** the full trace, chronological (also streamed to [trace_writer]
          as the machine ran, when one was given) *)
  spans : Conair_obs.Span.t list;  (** recovery spans, in start order *)
  metrics : Conair_obs.Metrics.t;
      (** the standard ConAir metric set plus the live event counters *)
  report : Conair_obs.Json.t;  (** the structured run report *)
}

(** Run a hardened program with the full observability layer installed:
    live metrics fed from the event stream, optional JSONL streaming to
    [trace_writer] (meta record first when [meta_info] is given), and a
    post-run fold into spans, metrics and a structured JSON report. *)
let observed_with ~config ~engine ?meta ?meta_info ?trace_writer program :
    run_report =
  let live = Conair_obs.Metrics.create () in
  (match (trace_writer, meta_info) with
  | Some w, Some mi ->
      Conair_obs.Jsonl.write_json w (Conair_obs.Jsonl.meta_json ~config mi)
  | _ -> ());
  let emit ev =
    (match trace_writer with
    | Some w -> w.Conair_obs.Jsonl.write (Conair_obs.Jsonl.event_line ev)
    | None -> ());
    Conair_obs.Report.live_metrics live ev
  in
  let sink = Trace.create ~emit () in
  let m =
    Engine.create ~config ?meta ~hooks:(Hooks.bundle ~trace:sink ()) engine
      program
  in
  let outcome = Engine.run m in
  let run = make_run m outcome in
  let events = Trace.events sink in
  let spans = Conair_obs.Span.of_events events in
  let metrics = Conair_obs.Report.standard_metrics ~into:live run.stats in
  let report =
    Conair_obs.Report.run_json ?meta:meta_info ~config ~spans ~outcome
      ~outputs:run.outputs run.stats
  in
  { run; events; spans; metrics; report }

let run_observed ?(config = Machine.default_config) ?(engine = Engine.Fast)
    ?meta_info ?trace_writer (h : hardened) : run_report =
  let meta = Machine.meta_of_harden h.hardened in
  observed_with ~config ~engine ~meta ?meta_info ?trace_writer
    h.hardened.program

(** One fully-observed execution of [p] — hardened per [mode] first when
    one is given, as written when [mode] is [None] — with the same
    pipeline either way: live metrics fed from the event stream,
    optional JSONL streaming to [trace_writer], spans, and the
    structured report. This is the single code path behind both the
    CLI's run/report subcommands and the serve daemon's run jobs, which
    is what makes their reports byte-identical. *)
let run_report_of ?(config = Machine.default_config) ?(engine = Engine.Fast)
    ?meta_info ?trace_writer ~(mode : mode option) (p : Program.t) :
    run_report =
  match mode with
  | Some mode ->
      run_observed ~config ~engine ?meta_info ?trace_writer (harden_exn p mode)
  | None -> observed_with ~config ~engine ?meta_info ?trace_writer p

(** Run a hardened program with the cost profiler installed and return
    the finalized profile next to the run: per-context useful/checkpoint/
    wasted attribution, per-site rollback waste, flamegraph and Chrome
    counter exports (see [Obs.Prof]). *)
let run_profiled ?(config = Machine.default_config) ?(engine = Engine.Fast)
    (h : hardened) : run * Conair_obs.Prof.t =
  let meta = Machine.meta_of_harden h.hardened in
  let prof = Conair_obs.Prof.create () in
  let m =
    Engine.create ~config ~meta
      ~hooks:(Hooks.bundle ~profile:(Conair_obs.Prof.probe prof) ())
      engine h.hardened.program
  in
  let outcome = Engine.run m in
  Conair_obs.Prof.finalize prof;
  (make_run m outcome, prof)

(** Run a program with the race/deadlock detector installed and return
    the finalized report next to the run. Pass [meta] (from
    [Machine.meta_of_harden]) to detect on a hardened program — the mode
    that matters for fail-stop bugs, where recovery keeps the run alive
    long enough for the conflicting access to execute. *)
let run_detected ?(config = Machine.default_config) ?(engine = Engine.Fast)
    ?options ?meta (p : Program.t) : run * Conair_race.Report.t =
  let d = Conair_race.Detect.create ?options () in
  let m =
    Engine.create ~config ?meta
      ~hooks:(Hooks.bundle ~race:(Conair_race.Detect.probe d) ())
      engine p
  in
  let outcome = Engine.run m in
  (make_run m outcome, Conair_race.Detect.report d)

(** [run_detected] on a hardened program with its recovery metadata. *)
let detect_hardened ?config ?engine ?options (h : hardened) =
  run_detected ?config ?engine ?options
    ~meta:(Machine.meta_of_harden h.hardened)
    h.hardened.program

(** Schedule record-and-replay: the scheduler-decision recorder, the
    strict/directed replay feeds, the time-travel inspector and the
    failing-interleaving minimizer (see [docs/REPLAY.md]). *)
module Replay = struct
  module Log = Conair_replay.Schedule_log
  module Recorder = Conair_replay.Recorder
  module Feed = Conair_replay.Feed
  module Driver = Conair_replay.Driver
  module Inspect = Conair_replay.Inspect
  module Minimize = Conair_replay.Minimize
  module Bundle = Conair_replay.Bundle
end

(** Automated fix synthesis: from a race report and a recorded failing
    schedule, candidate patches over Mir, validated through three gates
    (directed replay, regression sweep, deadlock-freedom) and ranked by
    measured cost (see [docs/FIXING.md]). *)
module Fix = struct
  module Patch = Conair_fix.Patch
  module Gates = Conair_fix.Gates
  module Pipeline = Conair_fix.Pipeline
end

let mode_name : mode -> string = function
  | Survival -> "survival"
  | Fix _ -> "fix"

(* Record while keeping the machine, so the result is a full facade
   [run] next to the schedule log. [race] rides along in the same scoped
   install — campaign workers observe schedule coverage (the
   [Obs.Coverage] collector probe) on the very run they record. *)
let record_into ?(config = Machine.default_config) ?(engine = Engine.Fast)
    ?meta ?race ~ident program : run * Replay.Log.t =
  let r = Conair_replay.Recorder.create () in
  let m =
    Engine.create ~config ?meta
      ~hooks:(Hooks.bundle ?race ~tap:(Conair_replay.Recorder.tap r) ())
      engine program
  in
  let outcome = Engine.run m in
  let run = make_run m outcome in
  let bundle =
    {
      Conair_replay.Driver.rb_outcome = outcome;
      rb_outputs = run.outputs;
      rb_stats = run.stats;
      rb_steps = Engine.steps m;
    }
  in
  ( run,
    Conair_replay.Driver.log_of_run ~engine ~config ?meta ~ident ~program r
      bundle )

(** [execute] with the schedule recorder installed: the run plus a
    self-contained schedule log that replays it bit-for-bit. *)
let record_run ?config ?engine ?ident ?race (p : Program.t) :
    run * Replay.Log.t =
  let ident =
    match ident with
    | Some i -> i
    | None -> Conair_replay.Schedule_log.ident "program"
  in
  record_into ?config ?engine ?race ~ident p

(** [execute_hardened] with the schedule recorder installed. The default
    ident carries the plan's mode ("survival" or "fix"). *)
let run_recorded ?config ?engine ?ident ?race (h : hardened) :
    run * Replay.Log.t =
  let ident =
    match ident with
    | Some i -> i
    | None ->
        Conair_replay.Schedule_log.ident ~mode:(mode_name h.plan.Plan.mode)
          "program"
  in
  record_into ?config ?engine ?race
    ~meta:(Machine.meta_of_harden h.hardened)
    ~ident h.hardened.program

(** Run with the flight recorder attached: the run plus the diagnostic
    bundle its ring retained — the always-on post-mortem artifact. The
    flight hook is the one hook that keeps the block engine on its
    window fast path, so this is cheap enough to leave on everywhere. *)
let run_flight ?(config = Machine.default_config) ?(engine = Engine.Fast)
    ?meta ?cap ?reason ~ident program : run * Conair_obs.Flight.t =
  let m, outcome, bundle =
    Conair_replay.Bundle.capture ~engine ~config ?meta ?cap ?reason ~ident
      program
  in
  (make_run m outcome, bundle)

(** Regenerate a diagnostic bundle from a recorded schedule log by
    deterministic re-run — how the fuzzer attaches a post-mortem bundle
    to each unique finding it already holds as a log. *)
let flight_of_log ?cap ?(reason = "finding") (log : Replay.Log.t) :
    (Conair_obs.Flight.t, string) result =
  let ( let* ) = Result.bind in
  let* program = Conair_replay.Schedule_log.program log in
  let* engine =
    Engine.of_string log.Conair_replay.Schedule_log.engine
  in
  let meta = Conair_replay.Schedule_log.machine_meta log in
  let _, _, bundle =
    Conair_replay.Bundle.capture ~engine
      ~config:log.Conair_replay.Schedule_log.config ?meta ?cap ~reason
      ~ident:log.Conair_replay.Schedule_log.ident program
  in
  Ok bundle

(** The canonical interleaving signature of a recorded run: the
    [Obs.Coverage] digest over the log's preemption-point sequence,
    contextualized by the recorded ident and program MD5 (so identical
    shapes of different programs stay distinct). Pass the per-address
    access orders of an [Obs.Coverage] collector that watched the run to
    sharpen the signature with data-access ordering. Engine-independent:
    the log's decision stream and the collector's event stream are
    byte-identical across ref/fast/block. *)
let interleaving_signature ?orders (log : Replay.Log.t) : string =
  let ident = log.Conair_replay.Schedule_log.ident in
  Conair_obs.Coverage.signature
    ~context:
      (Printf.sprintf "%s/%s/%s" ident.Conair_replay.Schedule_log.id_app
         ident.Conair_replay.Schedule_log.id_variant
         log.Conair_replay.Schedule_log.program_md5)
    ?orders
    ~decisions:log.Conair_replay.Schedule_log.decisions
    ~preemptions:log.Conair_replay.Schedule_log.preemptions ()

(** Re-execute a recorded schedule on either engine, detecting any
    divergence from the recording as a structured error. *)
let replay ?engine ?program ?meta (log : Replay.Log.t) =
  Conair_replay.Driver.replay ?engine ?program ?meta log

(** Shrink a failing recorded schedule to a locally minimal set of
    preemptions that still reproduces the failure. *)
let minimize ?max_tests ?detect ?program ?meta (log : Replay.Log.t) =
  Conair_replay.Minimize.minimize ?max_tests ?detect ?program ?meta log

(** A recovery trial in the style of §5: run the hardened program [runs]
    times (varying the random-scheduler seed) and report how many runs
    finished successfully with acceptable outputs. *)
type trial = {
  runs : int;
  recovered : int;
  total_rollbacks : int;
  max_recovery_steps : int;
}

(** ConSeq-style profile-based site pruning (§3.4: "use dynamic technique
    like ConSeq to prune well tested potential failure sites").

    [profile_sites] runs the *original* program [runs] times (varying the
    random seed when the policy is random) with per-instruction profiling
    and returns, for each survival-mode failure site, how often its
    instruction executed across runs where the program succeeded.

    [well_tested ~threshold] extracts the site iids executed at least
    [threshold] times — candidates for exclusion via
    [Plan.options.exclude_iids]. The trade-off is real and demonstrated in
    the tests and the A6 ablation: a hidden bug at a well-tested site
    loses its recovery. *)
type site_profile = {
  site : Analysis.Site.t;
  executions : int;  (** across the profiled successful runs *)
}

let profile_sites ?(config = Machine.default_config) ?(runs = 5)
    (p : Program.t) : site_profile list =
  let sites = Conair_analysis.Find_sites.survival p in
  let totals = Hashtbl.create 64 in
  for i = 1 to runs do
    let config =
      {
        config with
        profile_sites = true;
        policy =
          (match config.policy with
          | Sched.Random seed -> Sched.Random (seed + i)
          | Sched.Round_robin -> Sched.Round_robin);
      }
    in
    let m, outcome = Machine.run_program ~config p in
    if Outcome.is_success outcome then
      List.iter
        (fun (s : Conair_analysis.Site.t) ->
          let n = Stats.iid_hits_of (Machine.stats m) s.iid in
          Hashtbl.replace totals s.site_id
            (n + Option.value ~default:0 (Hashtbl.find_opt totals s.site_id)))
        sites
  done;
  List.map
    (fun (s : Conair_analysis.Site.t) ->
      {
        site = s;
        executions = Option.value ~default:0 (Hashtbl.find_opt totals s.site_id);
      })
    sites

let well_tested ?(threshold = 1) (profiles : site_profile list) : int list =
  List.filter_map
    (fun pr -> if pr.executions >= threshold then Some pr.site.iid else None)
    profiles

let recovery_trial ?(config = Machine.default_config) ?(runs = 50)
    ?(accept = fun (_ : string list) -> true) (h : hardened) : trial =
  let recovered = ref 0 and rollbacks = ref 0 and max_rec = ref 0 in
  for i = 1 to runs do
    let config =
      match config.policy with
      | Sched.Random seed -> { config with policy = Sched.Random (seed + i) }
      | Sched.Round_robin -> config
    in
    let r = execute_hardened ~config h in
    if Outcome.is_success r.outcome && accept r.outputs then incr recovered;
    rollbacks := !rollbacks + r.stats.rollbacks;
    max_rec := max !max_rec (Stats.max_recovery_time r.stats)
  done;
  {
    runs;
    recovered = !recovered;
    total_rollbacks = !rollbacks;
    max_recovery_steps = !max_rec;
  }
