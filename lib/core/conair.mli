(** ConAir: featherweight concurrency-bug recovery via single-threaded
    idempotent execution (Zhang, de Kruijf, Li, Lu, Sankaralingam —
    ASPLOS 2013), reimplemented for the Mir IR.

    The typical flow:

    {[
      let hardened = Conair.harden_exn program Conair.Survival in
      let run = Conair.execute_hardened hardened in
      (* run.outcome = Success; run.stats.rollbacks counts recoveries *)
    ]}

    The four layers are re-exported below: {!Ir} (the IR, builder and text
    syntax), {!Analysis} (failure sites, idempotent regions, slicing,
    inter-procedural recovery), {!Transform} (the hardening pass) and
    {!Runtime} (the interpreter with the recovery engine). *)

module Ir : sig
  module Ident = Conair_ir.Ident
  module Value = Conair_ir.Value
  module Instr = Conair_ir.Instr
  module Block = Conair_ir.Block
  module Func = Conair_ir.Func
  module Program = Conair_ir.Program
  module Builder = Conair_ir.Builder
  module Cfg = Conair_ir.Cfg
  module Validate = Conair_ir.Validate
  module Emit = Conair_ir.Emit
  module Parse = Conair_ir.Parse
end

module Analysis : sig
  module Site = Conair_analysis.Site
  module Find_sites = Conair_analysis.Find_sites
  module Region = Conair_analysis.Region
  module Slice = Conair_analysis.Slice
  module Optimize = Conair_analysis.Optimize
  module Callgraph = Conair_analysis.Callgraph
  module Interproc = Conair_analysis.Interproc
  module Plan = Conair_analysis.Plan
  module Prune = Conair_analysis.Prune
  module Viz = Conair_analysis.Viz
end

module Transform : sig
  module Rewrite = Conair_transform.Rewrite
  module Harden = Conair_transform.Harden
  module Report = Conair_transform.Report
  module Annotate = Conair_transform.Annotate
  module Lower = Conair_transform.Lower
end

module Runtime : sig
  module Outcome = Conair_runtime.Outcome
  module Heap = Conair_runtime.Heap
  module Locks = Conair_runtime.Locks
  module Link = Conair_runtime.Link
  module Thread = Conair_runtime.Thread
  module Sched = Conair_runtime.Sched
  module Stats = Conair_runtime.Stats
  module Machine = Conair_runtime.Machine
  module Ref_machine = Conair_runtime.Ref_machine
  module Compile = Conair_runtime.Compile
  module Block_machine = Conair_runtime.Block_machine
  module Engine = Conair_runtime.Engine
  module Hooks = Conair_runtime.Hooks
  module Trace = Conair_runtime.Trace
  module Profile = Conair_runtime.Profile
  module Race_probe = Conair_runtime.Race_probe
  module Flight_ring = Conair_runtime.Flight_ring
end

(** The dynamic race and deadlock detector: an online probe on either
    engine feeding three lenses — FastTrack-style happens-before race
    detection ([Hb]), Eraser-style lockset discipline checking
    ([Lockset]) and a lock-order graph with cycle detection
    ([Lockorder]). See [docs/DETECTION.md]. *)
module Race : sig
  module Vclock = Conair_race.Vclock
  module Report = Conair_race.Report
  module Hb = Conair_race.Hb
  module Lockset = Conair_race.Lockset
  module Lockorder = Conair_race.Lockorder
  module Detect = Conair_race.Detect
end

(** The observability layer: JSON encoding, streaming JSONL event logs,
    the metrics registry, recovery spans (with Chrome trace-event
    export), structured run reports, the deterministic cost profiler
    ([Prof]), the paper-style overhead harness ([Overhead]), and the
    cross-run aggregator ([Aggregate]). See [docs/OBSERVABILITY.md]. *)
module Obs : sig
  module Json = Conair_obs.Json
  module Jsonl = Conair_obs.Jsonl
  module Metrics = Conair_obs.Metrics
  module Span = Conair_obs.Span
  module Report = Conair_obs.Report
  module Prof = Conair_obs.Prof
  module Overhead = Conair_obs.Overhead
  module Aggregate = Conair_obs.Aggregate
  module Coverage = Conair_obs.Coverage
  module Campaign = Conair_obs.Campaign
  module Flight = Conair_obs.Flight
end

(** The two usage modes of §3.1: survival mode hardens every potential
    failure site against hidden bugs; fix mode hardens the instruction ids
    a user observed failing — a safe temporary patch for a bug whose root
    cause is unknown. *)
type mode = Conair_analysis.Plan.mode = Survival | Fix of int list

type hardened = {
  original : Conair_ir.Program.t;
  hardened : Conair_transform.Harden.t;
  plan : Conair_analysis.Plan.t;
  report : Conair_transform.Report.t;
}

val harden :
  ?analysis:Conair_analysis.Plan.options ->
  ?transform:Conair_transform.Harden.options ->
  Conair_ir.Program.t ->
  mode ->
  (hardened, string) result
(** The full static pipeline: failure-site identification,
    reexecution-point identification, optimization, inter-procedural
    analysis, and the code transformation. *)

val harden_exn :
  ?analysis:Conair_analysis.Plan.options ->
  ?transform:Conair_transform.Harden.options ->
  Conair_ir.Program.t ->
  mode ->
  hardened
(** @raise Invalid_argument on bad fix-mode sites. *)

(** One program execution and everything measured about it. [machine] is
    packed per engine; use {!Runtime.Engine} accessors for
    engine-generic access, or match on the constructor for
    engine-specific state. *)
type run = {
  outcome : Conair_runtime.Outcome.t;
  outputs : string list;
  stats : Conair_runtime.Stats.t;
  machine : Conair_runtime.Engine.machine;
}

val execute :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  Conair_ir.Program.t ->
  run
(** Run an (unhardened) program on the chosen engine (default
    [Engine.Fast]). All engines produce identical runs; pick by speed. *)

val execute_hardened :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  hardened ->
  run
(** Run a hardened program with the recovery metadata installed. *)

(** One observed execution: the run itself plus every telemetry artifact
    the observability layer derives from it. *)
type run_report = {
  run : run;
  events : Conair_runtime.Trace.event list;  (** chronological *)
  spans : Conair_obs.Span.t list;  (** recovery spans, in start order *)
  metrics : Conair_obs.Metrics.t;
      (** the standard ConAir metric set plus the live event counters *)
  report : Conair_obs.Json.t;  (** the structured run report *)
}

val run_observed :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  ?meta_info:Conair_obs.Jsonl.run_meta ->
  ?trace_writer:Conair_obs.Jsonl.writer ->
  hardened ->
  run_report
(** {!execute_hardened} with the observability layer installed: live
    metrics are maintained from the event stream as the machine runs,
    each event is streamed to [trace_writer] as a JSONL line (preceded by
    a meta record when [meta_info] is given), and after the run the trace
    is folded into recovery spans, the standard metric set, and a
    structured JSON report. *)

val run_report_of :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  ?meta_info:Conair_obs.Jsonl.run_meta ->
  ?trace_writer:Conair_obs.Jsonl.writer ->
  mode:mode option ->
  Conair_ir.Program.t ->
  run_report
(** One fully-observed execution of the program — hardened per [mode]
    first when one is given, as written when [mode] is [None] — through
    the same pipeline as {!run_observed} either way. The single code
    path behind both the CLI's run/report subcommands and the serve
    daemon's run jobs, which is what makes their reports
    byte-identical. *)

val run_profiled :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  hardened ->
  run * Conair_obs.Prof.t
(** {!execute_hardened} with the cost profiler installed: the returned
    profile is finalized — per-context useful/checkpoint/wasted
    attribution, per-site rollback waste, and the flamegraph / Chrome
    counter exports of {!Obs.Prof}. *)

(** ConSeq-style profile-based site pruning (§3.4): per-site execution
    counts over clean profiling runs of the original program. *)
type site_profile = {
  site : Conair_analysis.Site.t;
  executions : int;  (** across the profiled successful runs *)
}

val profile_sites :
  ?config:Conair_runtime.Machine.config ->
  ?runs:int ->
  Conair_ir.Program.t ->
  site_profile list

val well_tested : ?threshold:int -> site_profile list -> int list
(** Site iids executed at least [threshold] times — candidates for
    {!Conair_analysis.Plan.options.exclude_iids}. Beware the trade-off:
    a hidden bug at a well-tested site loses its recovery. *)

val run_detected :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  ?options:Conair_race.Detect.options ->
  ?meta:Conair_runtime.Machine.meta ->
  Conair_ir.Program.t ->
  run * Conair_race.Report.t
(** Run a program with the race/deadlock detector installed and return
    the finalized report next to the run. Reports are deterministic in
    (program, config, policy, seed) and identical across all three
    engines. *)

val detect_hardened :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  ?options:Conair_race.Detect.options ->
  hardened ->
  run * Conair_race.Report.t
(** {!run_detected} on a hardened program with its recovery metadata —
    the mode that matters for fail-stop bugs, where recovery keeps the
    run alive long enough for the conflicting access to execute (§6:
    recovery masks the symptom; detection un-masks the root cause). *)

(** Schedule record-and-replay: the scheduler-decision recorder, the
    strict/directed replay feeds, the time-travel inspector and the
    failing-interleaving minimizer. Runs are deterministic in (program,
    config, policy, seed), so the chosen-thread stream is a complete
    witness of an execution: recording it makes any run — in particular a
    one-in-a-thousand failing interleaving from the fuzzer —
    reproducible, inspectable at any step, and minimizable to the few
    context switches that actually cause the failure. See
    [docs/REPLAY.md]. *)
module Replay : sig
  module Log = Conair_replay.Schedule_log
  module Recorder = Conair_replay.Recorder
  module Feed = Conair_replay.Feed
  module Driver = Conair_replay.Driver
  module Inspect = Conair_replay.Inspect
  module Minimize = Conair_replay.Minimize
  module Bundle = Conair_replay.Bundle
end

(** Automated fix synthesis — closing the detect → explain → repair
    loop: {!Fix.Patch} synthesizes candidate patches (lock ladder,
    order enforcement, lock fusion) from a {!Race.Report} over the Mir
    program, {!Fix.Gates} validates each against the recorded failing
    schedule, a multi-seed regression sweep and the deadlock-freedom
    lens, and {!Fix.Pipeline} runs the whole loop end to end and ranks
    survivors by measured cost. See [docs/FIXING.md]. *)
module Fix : sig
  module Patch = Conair_fix.Patch
  module Gates = Conair_fix.Gates
  module Pipeline = Conair_fix.Pipeline
end

val record_run :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  ?ident:Replay.Log.ident ->
  ?race:Conair_runtime.Race_probe.probe ->
  Conair_ir.Program.t ->
  run * Replay.Log.t
(** {!execute} with the schedule recorder installed: the run plus a
    self-contained schedule log (embedded program, config, decision
    stream, result trailer) that replays it bit-for-bit on any engine.
    [race] installs an additional race probe in the same scoped hook
    installation — e.g. an {!Obs.Coverage} collector observing schedule
    coverage on the recorded run. *)

val run_recorded :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  ?ident:Replay.Log.ident ->
  ?race:Conair_runtime.Race_probe.probe ->
  hardened ->
  run * Replay.Log.t
(** {!execute_hardened} with the schedule recorder installed. The
    default ident carries the plan's mode ("survival" or "fix"). *)

val run_flight :
  ?config:Conair_runtime.Machine.config ->
  ?engine:Conair_runtime.Engine.t ->
  ?meta:Conair_runtime.Machine.meta ->
  ?cap:int ->
  ?reason:string ->
  ident:Replay.Log.ident ->
  Conair_ir.Program.t ->
  run * Conair_obs.Flight.t
(** Run with the flight recorder attached: the run plus the diagnostic
    bundle its ring retained (decision tail, preemptions, per-thread
    locksets, sync/recovery events, episode spans, regeneration recipe —
    see {!Obs.Flight}). [cap] sizes the decision ring (default
    {!Runtime.Flight_ring.default_capacity}); [reason] defaults to
    ["requested"]. Unlike every other hook, the flight recorder keeps
    the block engine on its window fast path, so this is cheap enough to
    leave always on (the [@perf] gate holds it within 5% of a bare
    run). *)

val flight_of_log :
  ?cap:int ->
  ?reason:string ->
  Replay.Log.t ->
  (Conair_obs.Flight.t, string) result
(** Regenerate a diagnostic bundle from a recorded schedule log by
    deterministic re-run under the log's embedded program, config and
    engine. [reason] defaults to ["finding"] — the fuzzer uses this to
    attach a post-mortem bundle to each unique finding in its corpus.
    Fails when the log carries no program or names an unknown engine. *)

val interleaving_signature : ?orders:(string * string) list ->
  Replay.Log.t -> string
(** The canonical interleaving signature of a recorded run
    ({!Obs.Coverage.signature} over the log's preemption-point sequence,
    contextualized by its ident and program MD5; [orders] adds a
    collector's per-address access orders). Byte-identical across
    engines and coordinator restarts — the campaign dedupe key. *)

val replay :
  ?engine:Replay.Driver.engine ->
  ?program:Conair_ir.Program.t ->
  ?meta:Conair_runtime.Machine.meta ->
  Replay.Log.t ->
  (Replay.Driver.result_bundle, Replay.Driver.error) result
(** Re-execute a recorded schedule with divergence detection; see
    {!Replay.Driver.replay}. *)

val minimize :
  ?max_tests:int ->
  ?detect:bool ->
  ?program:Conair_ir.Program.t ->
  ?meta:Conair_runtime.Machine.meta ->
  Replay.Log.t ->
  (Replay.Minimize.t, string) result
(** Shrink a failing recorded schedule to a locally minimal set of
    preemptions that still reproduces the failure; see
    {!Replay.Minimize.minimize}. *)

(** A recovery trial in the style of §5: run the hardened program many
    times (varying the random seed) and count successful, accepted runs. *)
type trial = {
  runs : int;
  recovered : int;
  total_rollbacks : int;
  max_recovery_steps : int;
}

val recovery_trial :
  ?config:Conair_runtime.Machine.config ->
  ?runs:int ->
  ?accept:(string list -> bool) ->
  hardened ->
  trial
