(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (§5-§6) from this reproduction, plus Bechamel
   wall-clock micro-benchmarks.

   Absolute numbers differ from the paper — the substrate is a
   deterministic IR interpreter, not an 8-core Xeon running MySQL — but the
   *shapes* the paper reports are reproduced: every bug recovers (two
   conditionally on output oracles), overhead is negligible and lower in
   fix mode than survival mode, segfault sites dominate the census,
   deadlock reexecution points are optimized away at a far higher rate than
   non-deadlock ones, RAR recovery is the fastest and order violations the
   slowest, and ConAir recovery beats whole-program restart by orders of
   magnitude. *)

open Conair.Ir
module Spec = Conair_bugbench.Bench_spec
module Registry = Conair_bugbench.Registry
module Micro = Conair_bugbench.Micro_patterns
module Machine = Conair.Runtime.Machine
module Outcome = Conair.Runtime.Outcome
module Stats = Conair.Runtime.Stats
module Plan = Conair.Analysis.Plan
module Region = Conair.Analysis.Region
module Optimize = Conair.Analysis.Optimize
module Restart = Conair_baselines.Restart
module Full_checkpoint = Conair_baselines.Full_checkpoint

let fuel = 8_000_000
let config = { Machine.default_config with fuel }
let run p = Conair.execute ~config p
let run_hardened h = Conair.execute_hardened ~config h
let survival inst = Conair.harden_exn inst.Spec.program Conair.Survival

let fixmode inst =
  Conair.harden_exn inst.Spec.program (Conair.Fix inst.Spec.fix_site_iids)

let pct num den = if den = 0 then 0.0 else 100.0 *. float num /. float den
let line = String.make 100 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* Table 1: the qualitative comparison                                 *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: concurrency-bug fixing/survival techniques (qualitative)";
  let row a b c d e = Printf.printf "%-14s %-12s %-12s %-12s %s\n" a b c d e in
  row "" "Auto.Fixing" "Prohibit." "Rollback" "ConAir";
  row "Compatibility" "yes" "partial" "partial"
    "yes (no OS/HW changes; library-level runtime)";
  row "Correctness" "yes" "yes" "yes"
    "yes (idempotent single-thread reexecution)";
  row "Generality" "no" "partial" "yes"
    "yes (atomicity, order, deadlock; see Table 3)";
  row "Performance" "yes" "partial" "partial"
    "yes (negligible overhead; see Table 3)"

(* ------------------------------------------------------------------ *)
(* Table 2: applications and bugs                                      *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2: applications and bugs";
  Printf.printf "%-13s %-34s %-8s %-12s %-18s %s\n" "App." "App. Type" "LOC"
    "Failures" "Causes" "Mir instrs (ours)";
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      Printf.printf "%-13s %-34s %-8s %-12s %-18s %d\n" s.info.name
        s.info.app_type s.info.loc_paper s.info.failure s.info.cause
        (Program.instr_count inst.program))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Table 3: recovery + overhead, fix & survival modes                  *)
(* ------------------------------------------------------------------ *)

(* The paper claims recovery after 1000 runs under the failure-inducing
   setting; we verify the deterministic buggy schedule plus a handful of
   seeded random schedules (the full 1000-run sweep is the fuzz tool's
   job). *)
let recovery_verdict (s : Spec.t) (h : Conair.hardened) (inst : Spec.instance)
    =
  let r = run_hardened h in
  let deterministic_ok =
    Outcome.is_success r.outcome && inst.accept r.outputs
  in
  let trial =
    Conair.recovery_trial
      ~config:{ config with policy = Conair.Runtime.Sched.Random 2 }
      ~runs:5 ~accept:inst.accept h
  in
  match r.outcome with
  | _ when deterministic_ok && trial.recovered = trial.runs ->
      if s.info.needs_oracle then "yes* (6/6)" else "yes (6/6)"
  | Outcome.Success when not (inst.accept r.outputs) -> "wrong-output"
  | _ ->
      Printf.sprintf "PARTIAL (%d/6)"
        ((if deterministic_ok then 1 else 0) + trial.recovered)

let overhead_pct (base : Conair.run) (hard : Conair.run) =
  pct (hard.stats.instrs - base.stats.instrs) base.stats.instrs

let table3 () =
  header
    "Table 3: overall bug recovery results (yes* = recovered given a \
     developer output oracle)";
  Printf.printf "%-13s %-12s %-16s %-10s %s\n" "App." "fix recov."
    "survival recov." "fix ovh."
    "survival ovh. (instruction overhead, clean run)";
  List.iter
    (fun (s : Spec.t) ->
      let buggy = s.make ~variant:Spec.Buggy ~oracle:true in
      let fix_v = recovery_verdict s (fixmode buggy) buggy in
      let buggy_s = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let surv_v = recovery_verdict s (survival buggy_s) buggy_s in
      let clean = s.make ~variant:Spec.Clean ~oracle:s.info.needs_oracle in
      let base = run clean.program in
      let fix_ovh =
        let clean_fix = s.make ~variant:Spec.Clean ~oracle:true in
        overhead_pct (run clean_fix.program)
          (run_hardened (fixmode clean_fix))
      in
      let surv_ovh = overhead_pct base (run_hardened (survival clean)) in
      Printf.printf "%-13s %-12s %-16s %-10s %.1f%%\n" s.info.name fix_v
        surv_v
        (Printf.sprintf "%.1f%%" fix_ovh)
        surv_ovh)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Table 4: static failure sites per type                              *)
(* ------------------------------------------------------------------ *)

let table4 () =
  header "Table 4: static failure sites hardened by ConAir (survival mode)";
  Printf.printf "%-13s %10s %12s %10s %10s %10s\n" "App." "Assertion"
    "WrongOutput" "Seg.Fault" "Deadlock" "Total";
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let h = survival inst in
      let c = h.report.census in
      Printf.printf "%-13s %10d %12d %10d %10d %10d\n" s.info.name
        c.assertion c.wrong_output c.seg_fault c.deadlock
        (Conair.Analysis.Find_sites.total c))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Table 5: reexecution points, static & dynamic                       *)
(* ------------------------------------------------------------------ *)

let table5 () =
  header "Table 5: reexecution points inserted by ConAir";
  Printf.printf "%-13s %18s %18s %14s %14s\n" "App." "survival static"
    "survival dynamic" "fix static" "fix dynamic";
  List.iter
    (fun (s : Spec.t) ->
      let clean = s.make ~variant:Spec.Clean ~oracle:s.info.needs_oracle in
      let hs = survival clean in
      let rs = run_hardened hs in
      let clean_fix = s.make ~variant:Spec.Clean ~oracle:true in
      let hf = fixmode clean_fix in
      let rf = run_hardened hf in
      Printf.printf "%-13s %18d %18d %14d %14d\n" s.info.name
        hs.report.static_points rs.stats.checkpoints hf.report.static_points
        rf.stats.checkpoints)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Table 6: effect of the unnecessary-rollback optimization (§4.2)     *)
(* ------------------------------------------------------------------ *)

let family_ckpt_ids (h : Conair.hardened) ~deadlock =
  List.filter_map
    (fun (point, id) ->
      let serves =
        List.exists
          (fun (sp : Plan.site_plan) ->
            sp.verdict = Optimize.Recoverable
            && (if deadlock then sp.site.kind = Instr.Deadlock
                else sp.site.kind <> Instr.Deadlock)
            && List.exists (Region.point_equal point) sp.points)
          h.plan.site_plans
      in
      if serves then Some id else None)
    h.hardened.checkpoints

let dynamic_family_hits (r : Conair.run) ids =
  List.fold_left (fun n id -> n + Stats.ckpt_hits_of r.stats id) 0 ids

let table6 () =
  header
    "Table 6: % of reexecution points removed by the optimization (static \
     / dynamic, per family)";
  Printf.printf "%-13s %22s %22s\n" "App." "Non-deadlock (st/dy)"
    "Deadlock (st/dy)";
  let no_opt =
    { Plan.default_options with optimize = false; interproc = false }
  in
  List.iter
    (fun (s : Spec.t) ->
      let clean = s.make ~variant:Spec.Clean ~oracle:s.info.needs_oracle in
      let h_opt = survival clean in
      let h_raw =
        Conair.harden_exn ~analysis:no_opt clean.program Conair.Survival
      in
      let r_opt = run_hardened h_opt and r_raw = run_hardened h_raw in
      let stat_nd_raw = List.length (family_ckpt_ids h_raw ~deadlock:false)
      and stat_nd_opt = List.length (family_ckpt_ids h_opt ~deadlock:false)
      and stat_dl_raw = List.length (family_ckpt_ids h_raw ~deadlock:true)
      and stat_dl_opt = List.length (family_ckpt_ids h_opt ~deadlock:true) in
      let dyn_nd_raw =
        dynamic_family_hits r_raw (family_ckpt_ids h_raw ~deadlock:false)
      and dyn_nd_opt =
        dynamic_family_hits r_opt (family_ckpt_ids h_opt ~deadlock:false)
      and dyn_dl_raw =
        dynamic_family_hits r_raw (family_ckpt_ids h_raw ~deadlock:true)
      and dyn_dl_opt =
        dynamic_family_hits r_opt (family_ckpt_ids h_opt ~deadlock:true)
      in
      let cell raw opt =
        if raw = 0 then "N/A"
        else Printf.sprintf "%.0f%%" (pct (raw - opt) raw)
      in
      Printf.printf "%-13s %22s %22s\n" s.info.name
        (Printf.sprintf "%s / %s" (cell stat_nd_raw stat_nd_opt)
           (cell dyn_nd_raw dyn_nd_opt))
        (Printf.sprintf "%s / %s" (cell stat_dl_raw stat_dl_opt)
           (cell dyn_dl_raw dyn_dl_opt)))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Table 7: recovery time vs whole-program restart                     *)
(* ------------------------------------------------------------------ *)

let table7 () =
  header
    "Table 7: failure recovery time (virtual steps; restart = rerun until \
     the bug does not manifest)";
  Printf.printf "%-13s %16s %10s %16s %10s\n" "App." "ConAir recovery"
    "# retries" "Restart" "Speedup";
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let h = survival inst in
      let r = run_hardened h in
      let rec_steps = Stats.max_recovery_time r.stats in
      let retries = Stats.total_retries r.stats in
      let restart = Restart.run ~config ~accept:inst.accept inst.program in
      Printf.printf "%-13s %16d %10d %16d %9.0fx\n" s.info.name rec_steps
        retries restart.total_steps
        (if rec_steps = 0 then 0.
         else float restart.total_steps /. float rec_steps))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Figure 2: the four atomicity-violation shapes                       *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header
    "Figure 2: atomicity-violation patterns — ConAir (idempotent regions) \
     vs whole-program checkpointing";
  Printf.printf "%-14s %14s %18s %20s\n" "Pattern" "expected"
    "ConAir recovers?" "Full-ckpt recovers?";
  List.iter
    (fun (p : Micro.pattern) ->
      let h = Conair.harden_exn p.program Conair.Survival in
      let cfg = { config with max_retries = 300 } in
      let r = Conair.execute_hardened ~config:cfg h in
      let conair_ok = Outcome.is_success r.outcome in
      let fc =
        Full_checkpoint.run
          ~config:{ Full_checkpoint.default_config with machine = config }
          p.program
      in
      let fc_ok = Outcome.is_success fc.outcome in
      Printf.printf "%-14s %14s %18s %20s\n" p.name
        (if p.conair_recoverable then "recoverable" else "beyond ConAir")
        (if conair_ok then "yes" else "no")
        (if fc_ok then "yes" else "no"))
    (Micro.all ())

(* ------------------------------------------------------------------ *)
(* Figure 4: the reexecution-region design spectrum                    *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header
    "Figure 4: design spectrum — ConAir vs traditional whole-program \
     checkpoint/rollback vs restart (buggy runs)";
  Printf.printf "%-13s | %9s %9s | %9s %9s %9s | %9s\n" "App." "CA ovh%"
    "CA rec" "FC ovh%" "FC rec" "FC snaps" "Restart";
  List.iter
    (fun (s : Spec.t) ->
      let clean = s.make ~variant:Spec.Clean ~oracle:s.info.needs_oracle in
      let buggy = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let ca_ovh =
        overhead_pct (run clean.program) (run_hardened (survival clean))
      in
      let ca = run_hardened (survival buggy) in
      let ca_rec = Stats.max_recovery_time ca.stats in
      let fc_cfg = { Full_checkpoint.default_config with machine = config } in
      let fc_clean = Full_checkpoint.run ~config:fc_cfg clean.program in
      let fc_ovh = pct fc_clean.checkpoint_overhead_steps fc_clean.run_steps in
      let fc = Full_checkpoint.run ~config:fc_cfg buggy.program in
      let restart = Restart.run ~config ~accept:buggy.accept buggy.program in
      Printf.printf "%-13s | %8.1f%% %9d | %8.1f%% %9d %9d | %9d\n"
        s.info.name ca_ovh ca_rec fc_ovh fc.recovery_steps fc.snapshots_taken
        restart.total_steps)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Figure 7: recoverable vs unrecoverable sites                        *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Figure 7: sites statically proven unrecoverable are pruned";
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let h = survival inst in
      Printf.printf
        "%-13s recoverable=%d unrecoverable(pruned)=%d inter-procedural=%d\n"
        s.info.name h.report.recoverable_sites h.report.unrecoverable_sites
        h.report.interproc_sites)
    Registry.all

(* ------------------------------------------------------------------ *)
(* Extended applications (beyond the paper's Table 2)                   *)
(* ------------------------------------------------------------------ *)

let extended_section () =
  header
    "Extended set: real-world bugs beyond the paper's ten (generality \
     check)";
  Printf.printf "%-10s %-32s %-22s %12s %10s %12s\n" "App." "App. Type"
    "Cause" "recovered?" "retries" "survival ovh";
  List.iter
    (fun (s : Spec.t) ->
      let buggy = s.make ~variant:Spec.Buggy ~oracle:false in
      let h = survival buggy in
      let r = run_hardened h in
      let clean = s.make ~variant:Spec.Clean ~oracle:false in
      let ovh =
        overhead_pct (run clean.program) (run_hardened (survival clean))
      in
      Printf.printf "%-10s %-32s %-22s %12s %10d %11.1f%%\n" s.info.name
        s.info.app_type s.info.cause
        (if Outcome.is_success r.outcome && buggy.accept r.outputs then "yes"
         else "NO")
        (Stats.total_retries r.stats) ovh)
    Registry.extended

(* ------------------------------------------------------------------ *)
(* §2.2: the recovery-class taxonomy over the pattern catalog           *)
(* ------------------------------------------------------------------ *)

let taxonomy_section () =
  header
    "Section 2.2 study: recovery classes over the bug-pattern catalog \
     (paper: 16 idempotent / 2 I/O / 2 non-idempotent writes of 20 \
     single-threaded-recoverable bugs)";
  let entries, breakdown = Conair_bugbench.Catalog.taxonomy () in
  List.iter
    (fun (e : Conair_bugbench.Catalog.entry) ->
      let h = Conair.harden_exn e.program Conair.Survival in
      let r =
        Conair.execute_hardened
          ~config:{ config with fuel = 500_000; max_retries = 400 }
          h
      in
      Printf.printf "%-24s %-28s %-24s %s\n" e.name e.category
        (Conair_bugbench.Catalog.class_name e.recovery)
        (if Outcome.is_success r.outcome then "recovered" else "not recovered"))
    entries;
  Printf.printf "\nBreakdown:\n";
  List.iter
    (fun (cls, n) ->
      Printf.printf "  %-26s %d\n" (Conair_bugbench.Catalog.class_name cls) n)
    breakdown

(* ------------------------------------------------------------------ *)
(* Ablations: the design knobs DESIGN.md calls out                      *)
(* ------------------------------------------------------------------ *)

(* How the deadlock-detection timeout trades detection latency against
   false timeouts: recovery time for the HawkNL deadlock across timeouts. *)
let ablation_lock_timeout () =
  header
    "Ablation A1: deadlock timeout vs recovery latency (HawkNL, buggy \
     schedule)";
  Printf.printf "%10s %16s %16s %10s %12s\n" "timeout" "detected at"
    "recovery steps" "rollbacks" "outcome";
  let s = Option.get (Registry.find "HawkNL") in
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  List.iter
    (fun timeout ->
      let h =
        Conair.harden_exn
          ~transform:{ Conair_transform.Harden.lock_timeout = timeout }
          inst.program Conair.Survival
      in
      let r = run_hardened h in
      let detected =
        List.fold_left
          (fun acc (e : Stats.episode) -> min acc e.ep_start)
          max_int r.stats.episodes
      in
      Printf.printf "%10d %16s %16d %10d %12s\n" timeout
        (if detected = max_int then "-" else string_of_int detected)
        (Stats.max_recovery_time r.stats)
        r.stats.rollbacks
        (if Outcome.is_success r.outcome then "recovered" else "FAILED"))
    [ 50; 100; 200; 400; 800; 1600 ]

(* The retry budget: too small and recovery gives up before the other
   thread makes progress (MozillaXP needs hundreds of retries). *)
let ablation_retry_budget () =
  header "Ablation A2: per-site retry budget (MozillaXP, buggy schedule)";
  Printf.printf "%12s %12s %10s\n" "max retries" "outcome" "rollbacks";
  let s = Option.get (Registry.find "MozillaXP") in
  let inst = s.make ~variant:Spec.Buggy ~oracle:false in
  let h = survival inst in
  List.iter
    (fun max_retries ->
      let r =
        Conair.execute_hardened ~config:{ config with max_retries } h
      in
      Printf.printf "%12d %12s %10d\n" max_retries
        (if Outcome.is_success r.outcome then "recovered" else "fail-stop")
        r.stats.rollbacks)
    [ 1; 10; 100; 1000; 10000 ]

(* Inter-procedural depth: 0 (disabled) loses MozillaXP and Transmission;
   the default 3 matches the paper. *)
let ablation_interproc_depth () =
  header
    "Ablation A3: inter-procedural recovery depth (buggy runs; recovered \
     benchmarks out of 10)";
  Printf.printf "%8s %10s %16s\n" "depth" "recovered" "interproc sites";
  List.iter
    (fun depth ->
      let analysis =
        if depth = 0 then { Plan.default_options with interproc = false }
        else { Plan.default_options with max_depth = depth }
      in
      let recovered = ref 0 and ip = ref 0 in
      List.iter
        (fun (s : Spec.t) ->
          let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
          let h = Conair.harden_exn ~analysis inst.program Conair.Survival in
          ip := !ip + h.report.interproc_sites;
          let r = run_hardened h in
          if Outcome.is_success r.outcome && inst.accept r.outputs then
            incr recovered)
        Registry.all;
      Printf.printf "%8d %10d %16d\n" depth !recovered !ip)
    [ 0; 1; 3 ]

(* The §3.4 extensions: safe-site pruning shrinks the static footprint;
   automatic null checks move recovery before the faulting callee. *)
let ablation_extensions () =
  header
    "Ablation A4: section 3.4 extensions (safe-site pruning + automatic \
     null checks), survival mode";
  Printf.printf "%-13s %18s %18s %16s\n" "App." "sites (base/prune)"
    "ckpts (base/prune)" "auto null checks";
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let h0 = survival inst in
      let h1 =
        Conair.harden_exn
          ~analysis:{ Plan.default_options with prune_safe = true }
          inst.program Conair.Survival
      in
      let _, checks = Conair.Transform.Annotate.add_null_checks inst.program in
      let total (h : Conair.hardened) =
        Conair.Analysis.Find_sites.total h.report.census
      in
      Printf.printf "%-13s %11d / %4d %11d / %4d %16d\n" s.info.name
        (total h0) (total h1) h0.report.static_points h1.report.static_points
        checks)
    Registry.all

(* §3.2.1: the -no-stack-slot-sharing simulation — spill-lower the
   hardened programs (every register to its own slot) and show recovery
   still works, at the cost of the extra load/store traffic a register
   allocator would normally avoid. *)
let ablation_lowering () =
  header
    "Ablation A7: spill lowering (own slots, the -no-stack-slot-sharing \
     analogue) on hardened buggy runs";
  Printf.printf "%-13s %12s %14s %16s\n" "App." "recovered?" "instr growth"
    "rollbacks";
  List.iter
    (fun name ->
      let s = Option.get (Registry.find name) in
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let h = survival inst in
      let lowered = Conair.Transform.Lower.spill h.hardened.program in
      let config =
        { config with Machine.verify_rollbacks = false }
      in
      let meta = Machine.meta_of_harden h.Conair.hardened in
      let m, outcome = Machine.run_program ~config ~meta lowered in
      let base = run_hardened h in
      Printf.printf "%-13s %12s %13.2fx %16d\n" name
        (if Outcome.is_success outcome && inst.accept (Machine.outputs m)
         then "yes"
         else "NO")
        (float (Machine.stats m).instrs /. float base.stats.instrs)
        (Machine.stats m).rollbacks)
    (* the deadlock and RAR benchmarks: their buggy interleavings are
       robust to the ~2.5x slowdown lowering adds, so the recovery path is
       genuinely exercised (rollbacks > 0) *)
    [ "HawkNL"; "MozillaJS"; "SQLite"; "MySQL2" ]

(* ConSeq-style profile pruning (§3.4): overhead saved vs recovery lost. *)
let ablation_profile_prune () =
  header
    "Ablation A6: ConSeq-style profile pruning (exclude sites executed on \
     clean profiling runs)";
  Printf.printf "%-13s %16s %16s %18s\n" "App." "sites base" "sites pruned"
    "bug still recov.?";
  List.iter
    (fun name ->
      let s = Option.get (Registry.find name) in
      let clean = s.make ~variant:Spec.Clean ~oracle:s.info.needs_oracle in
      let profiles = Conair.profile_sites ~config ~runs:2 clean.program in
      let excluded_msgs =
        List.filter_map
          (fun (p : Conair.site_profile) ->
            if p.executions > 0 then Some p.site.msg else None)
          profiles
      in
      (* map the exclusion onto the buggy variant by site message (iids
         shift with the injected sleeps) *)
      let buggy = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      let excluded =
        List.filter_map
          (fun (st : Conair.Analysis.Site.t) ->
            if List.mem st.msg excluded_msgs then Some st.iid else None)
          (Conair.Analysis.Find_sites.survival buggy.program)
      in
      let h0 = survival buggy in
      let h1 =
        Conair.harden_exn
          ~analysis:{ Plan.default_options with exclude_iids = excluded }
          buggy.program Conair.Survival
      in
      let r = run_hardened h1 in
      Printf.printf "%-13s %16d %16d %18s\n" s.info.name
        (List.length h0.plan.site_plans)
        (List.length h1.plan.site_plans)
        (if Outcome.is_success r.outcome && buggy.accept r.outputs then "yes"
         else "NO (pruned away)"))
    [ "ZSNES"; "HTTrack"; "MySQL2" ]

(* §6.4: static analysis time. The paper's headline is that the
   inter-procedural analysis dominates (4 hours of the MySQL total); the
   same shape holds here, including on a scaled-up synthetic program. *)
let analysis_time_section () =
  header
    "Section 6.4: static analysis + transformation time (ms; interproc \
     analysis dominates as program size grows)";
  Printf.printf "%-22s %10s %14s %14s\n" "Program" "instrs" "intra-only"
    "full pipeline";
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  let measure name (p : Program.t) =
    let no_ip = { Plan.default_options with interproc = false } in
    let intra =
      time_ms (fun () -> Conair.harden_exn ~analysis:no_ip p Conair.Survival)
    in
    let full = time_ms (fun () -> Conair.harden_exn p Conair.Survival) in
    Printf.printf "%-22s %10d %13.1f %13.1f\n" name (Program.instr_count p)
      intra full
  in
  List.iter
    (fun (s : Spec.t) ->
      let inst = s.make ~variant:Spec.Buggy ~oracle:s.info.needs_oracle in
      measure s.info.name inst.program)
    Registry.all;
  (* A scaled-up synthetic application: a deep pipeline with many
     call-connected stages, the worst case for the caller-chain walk. *)
  List.iter
    (fun stages ->
      let p =
        Builder.build ~main:"main" @@ fun b ->
        Conair_bugbench.Mirlib.add_stdlib ~stages b;
        Builder.func b "main" ~params:[] @@ fun f ->
        Builder.label f "entry";
        Builder.call f ~into:"v" "vec_new" [ Builder.int 8 ];
        Builder.call f ~into:"ck" "run_pipeline" [ Builder.reg "v" ];
        Builder.output f "ck=%v" [ Builder.reg "ck" ];
        Builder.exit_ f
      in
      measure (Printf.sprintf "synthetic (%d stages)" stages) p)
    [ 25; 50; 100 ]

(* The §3.1.1 detection-mechanism ablation: timeout-based (the paper's
   prototype) vs wait-graph cycle detection. *)
let ablation_detection () =
  header
    "Ablation A5: deadlock detection mechanism (buggy deadlock benchmarks)";
  Printf.printf "%-13s %24s %24s\n" "App." "timeout: detected/rec."
    "wait-graph: detected/rec.";
  let first_rollback (r : Conair.run) =
    List.fold_left
      (fun acc (e : Stats.episode) -> min acc e.ep_start)
      max_int r.stats.episodes
  in
  List.iter
    (fun name ->
      let s = Option.get (Registry.find name) in
      let inst = s.make ~variant:Spec.Buggy ~oracle:false in
      let h = survival inst in
      let run detection =
        Conair.execute_hardened
          ~config:{ config with Machine.deadlock_detection = detection }
          h
      in
      let slow = run Machine.Timeout_based in
      let fast = run Machine.Wait_graph in
      let cell (r : Conair.run) =
        Printf.sprintf "%d / %d" (first_rollback r)
          (Stats.max_recovery_time r.stats)
      in
      Printf.printf "%-13s %24s %24s\n" name (cell slow) (cell fast))
    [ "HawkNL"; "MozillaJS"; "SQLite" ]

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock micro-benchmarks                               *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  header
    "Bechamel: wall-clock of full clean runs, original vs ConAir-hardened \
     (ns per run)";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let tests =
    List.concat_map
      (fun name ->
        let s = Option.get (Registry.find name) in
        let clean = s.make ~variant:Spec.Clean ~oracle:s.info.needs_oracle in
        let h = survival clean in
        [
          Test.make
            ~name:(name ^ "/original")
            (Staged.stage (fun () -> ignore (run clean.program)));
          Test.make
            ~name:(name ^ "/hardened")
            (Staged.stage (fun () -> ignore (run_hardened h)));
        ])
      [ "MySQL2"; "ZSNES"; "HawkNL" ]
  in
  let test = Test.make_grouped ~name:"overhead" tests in
  let results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%12.0f ns/run" e
        | Some [] | None -> "(no estimate)"
      in
      Printf.printf "%-36s %s\n" name est)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* "interp" mode: machine-readable interpreter throughput benchmark    *)
(* ------------------------------------------------------------------ *)

module Ref_machine = Conair.Runtime.Ref_machine
module Engine = Conair.Runtime.Engine
module Catalog = Conair_bugbench.Catalog

(* A compute-heavy, single-threaded micro program: 200k iterations of a
   cross-function mul/add/mod mix. Pure interpreter throughput — no
   scheduling contention, no recovery — so steps/sec here is the honest
   "how fast can the step loop go" number. *)
let interp_micro () =
  Builder.build ~main:"main" @@ fun b ->
  (Builder.func b "mix" ~params:[ "x"; "k" ] @@ fun f ->
   Builder.label f "entry";
   Builder.mul f "a" (Builder.reg "x") (Builder.int 1103515245);
   Builder.add f "a" (Builder.reg "a") (Builder.reg "k");
   Builder.binop f "a" Instr.Mod (Builder.reg "a") (Builder.int 2147483647);
   Builder.ret f (Some (Builder.reg "a")));
  Builder.func b "main" ~params:[] @@ fun f ->
  Builder.label f "entry";
  Builder.move f "acc" (Builder.int 1);
  Builder.move f "i" (Builder.int 0);
  Builder.label f "loop";
  Builder.call f ~into:"acc" "mix" [ Builder.reg "acc"; Builder.reg "i" ];
  Builder.add f "i" (Builder.reg "i") (Builder.int 1);
  Builder.lt f "c" (Builder.reg "i") (Builder.int 200_000);
  Builder.branch f (Builder.reg "c") "loop" "done";
  Builder.label f "done";
  Builder.output f "acc=%v" [ Builder.reg "acc" ];
  Builder.exit_ f

(* Best-of-n wall clock; returns the last result and the fastest time. *)
let time_best ?(repeats = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

(* The sweep corpus: every registry benchmark (buggy and clean), every
   taxonomy catalog entry, every micro pattern — original and, where the
   pipeline applies, hardened with recovery metadata installed. *)
let interp_sweep_corpus () =
  let originals =
    List.concat_map
      (fun (s : Spec.t) ->
        [
          (s.make ~variant:Spec.Buggy ~oracle:true).program;
          (s.make ~variant:Spec.Clean ~oracle:false).program;
        ])
      (Registry.all @ Registry.extended)
    @ List.map
        (fun (e : Conair_bugbench.Catalog.entry) -> e.program)
        (Catalog.all ())
    @ List.map (fun (pt : Micro.pattern) -> pt.program) (Micro.all ())
  in
  List.concat_map
    (fun p ->
      match Conair.harden p Conair.Survival with
      | Error _ -> [ (p, None) ]
      | Ok h ->
          [
            (p, None);
            (h.hardened.program, Some (Machine.meta_of_harden h.hardened));
          ])
    originals

let bench_interp () =
  let micro = interp_micro () in
  let micro_config = { Machine.default_config with fuel = 10_000_000 } in
  (* Best-of-12: the micro run is short enough (tens of ms) that a single
     sample is dominated by scheduling jitter; the minimum over a dozen
     runs is the stable throughput figure. All engines get the same
     treatment, so the ratios are jitter-free too. *)
  let time_engine engine =
    time_best ~repeats:12 (fun () ->
        Engine.run_program ~config:micro_config engine micro)
  in
  let (ref_m, ref_out), ref_t = time_engine Engine.Ref in
  let (fast_m, fast_out), fast_t = time_engine Engine.Fast in
  let (block_m, block_out), block_t = time_engine Engine.Block in
  (* The recorder-on column: the block engine with a flight ring
     attached (ring creation included — that is what `--flight` pays
     per run). The @perf gate holds this within 5% of recorder-off. *)
  let (flight_m, flight_out), flight_t =
    time_best ~repeats:12 (fun () ->
        let ring = Conair.Runtime.Flight_ring.create () in
        Engine.run_program ~config:micro_config
          ~hooks:(Conair.Runtime.Hooks.bundle ~flight:ring ())
          Engine.Block micro)
  in
  if fast_out <> ref_out || block_out <> ref_out || flight_out <> ref_out then
    failwith "interp bench: micro outcomes diverge between engines";
  let steps = Engine.steps fast_m in
  if
    steps <> Engine.steps ref_m
    || steps <> Engine.steps block_m
    || steps <> Engine.steps flight_m
  then failwith "interp bench: micro step counts diverge between engines";
  let ref_sps = float steps /. ref_t
  and fast_sps = float steps /. fast_t
  and block_sps = float steps /. block_t
  and flight_sps = float steps /. flight_t in
  Printf.printf "micro: %d steps\n" steps;
  Printf.printf "  reference:      %.4fs  %12.0f steps/s\n" ref_t ref_sps;
  Printf.printf "  pre-resolved:   %.4fs  %12.0f steps/s\n" fast_t fast_sps;
  Printf.printf "  block-compiled: %.4fs  %12.0f steps/s\n" block_t block_sps;
  Printf.printf "  block + flight: %.4fs  %12.0f steps/s\n" flight_t flight_sps;
  Printf.printf "  fast/ref: %.2fx   block/ref: %.2fx   block/fast: %.2fx\n"
    (fast_sps /. ref_sps) (block_sps /. ref_sps) (block_sps /. fast_sps);
  Printf.printf "  flight/block: %.3fx (recorder-on vs recorder-off)\n"
    (flight_sps /. block_sps);
  let corpus = interp_sweep_corpus () in
  let sweep_config = { Machine.default_config with fuel = 200_000 } in
  let sweep engine =
    snd
      (time_best ~repeats:2 (fun () ->
           List.iter
             (fun (p, meta) ->
               ignore (Engine.run_program ~config:sweep_config ?meta engine p))
             corpus))
  in
  let sweep_ref_t = sweep Engine.Ref in
  let sweep_fast_t = sweep Engine.Fast in
  let sweep_block_t = sweep Engine.Block in
  Printf.printf "sweep: %d runs over the bugbench catalog\n"
    (List.length corpus);
  Printf.printf "  reference:      %.4fs\n" sweep_ref_t;
  Printf.printf "  pre-resolved:   %.4fs\n" sweep_fast_t;
  Printf.printf "  block-compiled: %.4fs\n" sweep_block_t;
  Printf.printf "  fast/ref: %.2fx   block/ref: %.2fx   block/fast: %.2fx\n"
    (sweep_ref_t /. sweep_fast_t)
    (sweep_ref_t /. sweep_block_t)
    (sweep_fast_t /. sweep_block_t);
  let json =
    let open Conair.Obs.Json in
    Obj
      [
        ( "micro",
          Obj
            [
              ("steps", Int steps);
              ("ref_seconds", Float ref_t);
              ("ref_steps_per_sec", Float ref_sps);
              ("fast_seconds", Float fast_t);
              ("fast_steps_per_sec", Float fast_sps);
              ("block_seconds", Float block_t);
              ("block_steps_per_sec", Float block_sps);
              ("block_flight_seconds", Float flight_t);
              ("block_flight_steps_per_sec", Float flight_sps);
              (* fast over ref; kept under its historical name *)
              ("speedup", Float (fast_sps /. ref_sps));
              ("fast_vs_ref", Float (fast_sps /. ref_sps));
              ("block_vs_ref", Float (block_sps /. ref_sps));
              ("block_vs_fast", Float (block_sps /. fast_sps));
              ("flight_vs_block", Float (flight_sps /. block_sps));
            ] );
        ( "sweep",
          Obj
            [
              ("runs", Int (List.length corpus));
              ("ref_seconds", Float sweep_ref_t);
              ("fast_seconds", Float sweep_fast_t);
              ("block_seconds", Float sweep_block_t);
              ("speedup", Float (sweep_ref_t /. sweep_fast_t));
              ("fast_vs_ref", Float (sweep_ref_t /. sweep_fast_t));
              ("block_vs_ref", Float (sweep_ref_t /. sweep_block_t));
              ("block_vs_fast", Float (sweep_fast_t /. sweep_block_t));
            ] );
      ]
  in
  let oc = open_out "BENCH_interp.json" in
  output_string oc (Conair.Obs.Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_interp.json\n"

(* ------------------------------------------------------------------ *)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "interp" then bench_interp ()
  else begin
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  table6 ();
  table7 ();
  fig2 ();
  fig4 ();
  fig7 ();
  extended_section ();
  taxonomy_section ();
  ablation_lock_timeout ();
  ablation_retry_budget ();
  ablation_interproc_depth ();
  ablation_extensions ();
  ablation_detection ();
  ablation_lowering ();
  ablation_profile_prune ();
  analysis_time_section ();
  bechamel_section ();
  Printf.printf "\n%s\nAll tables and figures regenerated.\n" line
  end
